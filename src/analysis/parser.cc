#include "analysis/parser.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace merch::analysis {
namespace {

struct Token {
  std::string text;
  SourceLoc loc;
};

/// Whitespace-separated tokens; '{' and '}' always stand alone; '#' starts
/// a comment running to end of line.
std::vector<Token> Scan(std::string_view text) {
  std::vector<Token> tokens;
  int line = 1, col = 1;
  std::string current;
  SourceLoc start;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back({current, start});
      current.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '#') {  // comment to end of line
      flush();
      while (i < text.size() && text[i] != '\n') ++i;
      --i;
      continue;
    }
    if (c == '\n') {
      flush();
      ++line;
      col = 1;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
      ++col;
      continue;
    }
    if (c == '{' || c == '}') {
      flush();
      tokens.push_back({std::string(1, c), {line, col}});
      ++col;
      continue;
    }
    if (current.empty()) start = {line, col};
    current.push_back(c);
    ++col;
  }
  flush();
  return tokens;
}

/// Shortest decimal form of `v` that strtod round-trips exactly.
std::string FormatDouble(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : tokens_(Scan(text)) {}

  ParseResult Run() {
    while (pos_ < tokens_.size()) {
      const Token& tok = tokens_[pos_];
      if (tok.text == "kernel") {
        ++pos_;
        if (const Token* name = Take("kernel name")) {
          result_.module.name = name->text;
        }
      } else if (tok.text == "object") {
        ParseObject();
      } else if (tok.text == "register") {
        ParseRegister();
      } else if (tok.text == "task") {
        ParseTask();
      } else {
        Error(tok.loc, "expected 'kernel', 'object', 'register' or 'task', "
                       "got '" + tok.text + "'");
        SkipLine(tok.loc.line);
      }
    }
    return std::move(result_);
  }

 private:
  const Token* Peek() const {
    return pos_ < tokens_.size() ? &tokens_[pos_] : nullptr;
  }

  /// Consume and return the next token, or record an error naming `what`.
  const Token* Take(const char* what) {
    if (pos_ < tokens_.size()) return &tokens_[pos_++];
    Error(LastLoc(), std::string("unexpected end of input, expected ") + what);
    return nullptr;
  }

  SourceLoc LastLoc() const {
    return tokens_.empty() ? SourceLoc{1, 1} : tokens_.back().loc;
  }

  void Error(SourceLoc loc, std::string message) {
    result_.errors.push_back({loc, std::move(message)});
  }

  /// Error recovery: skip tokens on `line` so one bad statement does not
  /// cascade.
  void SkipLine(int line) {
    while (pos_ < tokens_.size() && tokens_[pos_].loc.line == line) ++pos_;
  }

  // ---- value parsing ------------------------------------------------

  bool ParseI64(const Token& tok, std::string_view value, std::int64_t* out) {
    errno = 0;
    char* end = nullptr;
    const std::string s(value);
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno != 0 || end == s.c_str() || *end != '\0') {
      Error(tok.loc, "expected an integer, got '" + s + "'");
      return false;
    }
    *out = v;
    return true;
  }

  bool ParseF64(const Token& tok, std::string_view value, double* out) {
    errno = 0;
    char* end = nullptr;
    const std::string s(value);
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end == s.c_str() || *end != '\0' || !std::isfinite(v)) {
      Error(tok.loc, "expected a number, got '" + s + "'");
      return false;
    }
    *out = v;
    return true;
  }

  /// Non-negative count; accepts 10-based scientific shorthand ("1e6").
  bool ParseU64(const Token& tok, std::string_view value, std::uint64_t* out) {
    double v = 0;
    if (!ParseF64(tok, value, &v)) return false;
    if (v < 0 || v > 1.8e19 || v != std::floor(v)) {
      Error(tok.loc, "expected a non-negative whole number, got '" +
                         std::string(value) + "'");
      return false;
    }
    *out = static_cast<std::uint64_t>(v);
    return true;
  }

  /// Comma-separated non-negative task ids ("0,1,4"), as in `after 0,1`.
  void ParseTaskIdList(const Token& tok, std::string_view value,
                       std::vector<TaskId>* out) {
    std::size_t start = 0;
    bool any = false;
    while (start <= value.size()) {
      const std::size_t comma = value.find(',', start);
      const std::string_view item = value.substr(
          start,
          comma == std::string_view::npos ? std::string_view::npos
                                          : comma - start);
      std::int64_t v = 0;
      if (!item.empty() && ParseI64(tok, item, &v)) {
        if (v < 0) {
          Error(tok.loc, "task id must be non-negative, got '" +
                             std::string(item) + "'");
        } else {
          out->push_back(static_cast<TaskId>(v));
          any = true;
        }
      }
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    if (!any) Error(tok.loc, "'after' names no predecessor tasks");
  }

  /// Byte size with optional KiB/MiB/GiB/TiB (or K/M/G/T) suffix.
  bool ParseBytes(const Token& tok, std::string_view value,
                  std::uint64_t* out) {
    std::size_t suffix = value.size();
    while (suffix > 0 &&
           !std::isdigit(static_cast<unsigned char>(value[suffix - 1])) &&
           value[suffix - 1] != '.') {
      --suffix;
    }
    const std::string_view unit = value.substr(suffix);
    double scale = 1.0;
    if (unit == "" || unit == "B") {
      scale = 1.0;
    } else if (unit == "K" || unit == "KiB") {
      scale = static_cast<double>(KiB);
    } else if (unit == "M" || unit == "MiB") {
      scale = static_cast<double>(MiB);
    } else if (unit == "G" || unit == "GiB") {
      scale = static_cast<double>(GiB);
    } else if (unit == "T" || unit == "TiB") {
      scale = static_cast<double>(GiB) * 1024.0;
    } else {
      Error(tok.loc, "unknown size suffix '" + std::string(unit) + "'");
      return false;
    }
    double v = 0;
    if (!ParseF64(tok, value.substr(0, suffix), &v)) return false;
    if (v < 0) {
      Error(tok.loc, "byte size must be non-negative");
      return false;
    }
    *out = static_cast<std::uint64_t>(v * scale);
    return true;
  }

  /// Splits "key=value" tokens; returns false (without consuming) when the
  /// next token is not an attribute.
  bool TakeAttr(std::string* key, std::string* value, const Token** tok) {
    const Token* t = Peek();
    if (t == nullptr) return false;
    const std::size_t eq = t->text.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    *key = t->text.substr(0, eq);
    *value = t->text.substr(eq + 1);
    *tok = t;
    ++pos_;
    return true;
  }

  std::size_t ResolveObject(const Token& tok, const std::string& name) {
    const std::size_t idx = result_.module.FindObject(name);
    if (idx == SIZE_MAX) {
      Error(tok.loc, "unknown object '" + name +
                         "' (objects must be declared before use)");
    }
    return idx;
  }

  // ---- statements ---------------------------------------------------

  void ParseObject() {
    const SourceLoc loc = tokens_[pos_].loc;
    ++pos_;  // 'object'
    const Token* name = Take("object name");
    if (name == nullptr) return;
    ObjectDecl decl;
    decl.name = name->text;
    decl.loc = name->loc;
    if (result_.module.FindObject(decl.name) != SIZE_MAX) {
      Error(name->loc, "object '" + decl.name + "' redeclared");
      SkipLine(loc.line);
      return;
    }
    std::string key, value;
    const Token* tok = nullptr;
    bool saw_bytes = false;
    while (TakeAttr(&key, &value, &tok)) {
      if (key == "bytes") {
        saw_bytes = ParseBytes(*tok, value, &decl.bytes);
      } else if (key == "elem") {
        std::uint64_t v = 0;
        if (ParseU64(*tok, value, &v) && v > 0) {
          decl.element_bytes = static_cast<std::uint32_t>(v);
        }
      } else if (key == "owner") {
        if (value == "shared") {
          decl.owner = kInvalidTask;
        } else {
          std::int64_t v = 0;
          if (ParseI64(*tok, value, &v)) decl.owner = static_cast<TaskId>(v);
        }
      } else if (key == "pattern") {
        if (value == "stream" || value == "strided" || value == "stencil" ||
            value == "random") {
          decl.pattern_hint = value;
        } else {
          Error(tok->loc, "unknown pattern hint '" + value +
                              "' (stream|strided|stencil|random)");
        }
      } else {
        Error(tok->loc, "unknown object attribute '" + key + "'");
      }
    }
    if (!saw_bytes) {
      Error(loc, "object '" + decl.name + "' is missing bytes=<size>");
    }
    result_.module.objects.push_back(std::move(decl));
  }

  void ParseRegister() {
    const SourceLoc loc = tokens_[pos_].loc;
    ++pos_;  // 'register'
    bool any = false;
    while (const Token* t = Peek()) {
      if (t->loc.line != loc.line) break;  // register lists end at newline
      ++pos_;
      const std::size_t idx = ResolveObject(*t, t->text);
      if (idx != SIZE_MAX) result_.module.objects[idx].registered = true;
      any = true;
    }
    if (!any) Error(loc, "register statement names no objects");
  }

  void ParseTask() {
    const SourceLoc loc = tokens_[pos_].loc;
    ++pos_;  // 'task'
    const Token* id = Take("task id");
    if (id == nullptr) return;
    TaskDecl task;
    task.loc = loc;
    std::int64_t v = 0;
    if (!ParseI64(*id, id->text, &v) || v < 0) {
      SkipLine(loc.line);
      return;
    }
    task.task = static_cast<TaskId>(v);
    if (const Token* t = Peek(); t != nullptr && t->text == "after") {
      ++pos_;  // 'after'
      const Token* list = Take("predecessor task list");
      if (list == nullptr) return;
      ParseTaskIdList(*list, list->text, &task.after);
      // Canonical order: sorted, deduplicated, no self-edges.
      std::sort(task.after.begin(), task.after.end());
      task.after.erase(std::unique(task.after.begin(), task.after.end()),
                       task.after.end());
      if (std::find(task.after.begin(), task.after.end(), task.task) !=
          task.after.end()) {
        Error(list->loc, "task " + std::to_string(task.task) +
                             " declares itself as a predecessor");
        task.after.erase(std::remove(task.after.begin(), task.after.end(),
                                     task.task),
                         task.after.end());
      }
    }
    const Token* brace = Take("'{'");
    if (brace == nullptr || brace->text != "{") {
      if (brace != nullptr) {
        Error(brace->loc, "expected '{' after task header, got '" +
                              brace->text + "'");
      }
      return;
    }
    while (true) {
      const Token* t = Peek();
      if (t == nullptr) {
        Error(LastLoc(), "unexpected end of input inside task " +
                             std::to_string(task.task) + " (missing '}')");
        break;
      }
      if (t->text == "}") {
        ++pos_;
        break;
      }
      if (t->text == "loop") {
        LoopIr body;
        if (ParseLoop(&body, /*depth=*/1)) task.loops.push_back(std::move(body));
      } else {
        Error(t->loc, "expected 'loop' or '}' inside task, got '" + t->text +
                          "'");
        SkipLine(t->loc.line);
      }
    }
    result_.module.tasks.push_back(std::move(task));
  }

  bool ParseLoop(LoopIr* out, int depth) {
    const SourceLoc loc = tokens_[pos_].loc;
    ++pos_;  // 'loop'
    if (depth > kMaxLoopDepth) {
      Error(loc, "loop nest exceeds the maximum depth of " +
                     std::to_string(kMaxLoopDepth));
      // Consume the rest of the input: a nest this deep is adversarial and
      // resynchronising on braces would recurse just the same.
      pos_ = tokens_.size();
      return false;
    }
    const Token* name = Take("loop name");
    if (name == nullptr) return false;
    out->name = name->text;
    out->loc = loc;
    std::string key, value;
    const Token* tok = nullptr;
    bool saw_trips = false;
    while (TakeAttr(&key, &value, &tok)) {
      if (key == "trips") {
        saw_trips = ParseU64(*tok, value, &out->trip_count);
      } else if (key == "insns") {
        ParseF64(*tok, value, &out->instructions_per_iteration);
      } else if (key == "branch") {
        ParseF64(*tok, value, &out->branch_fraction);
      } else if (key == "vector") {
        ParseF64(*tok, value, &out->vector_fraction);
      } else {
        Error(tok->loc, "unknown loop attribute '" + key + "'");
      }
    }
    if (!saw_trips) {
      Error(loc, "loop '" + out->name + "' is missing trips=<count>");
    }
    const Token* brace = Take("'{'");
    if (brace == nullptr || brace->text != "{") {
      if (brace != nullptr) {
        Error(brace->loc, "expected '{' after loop header, got '" +
                              brace->text + "'");
      }
      return false;
    }
    while (true) {
      const Token* t = Peek();
      if (t == nullptr) {
        Error(LastLoc(), "unexpected end of input inside loop '" + out->name +
                             "' (missing '}')");
        return false;
      }
      if (t->text == "}") {
        ++pos_;
        return true;
      }
      if (t->text == "loop") {
        LoopIr child;
        if (ParseLoop(&child, depth + 1)) {
          out->children.push_back(std::move(child));
        } else if (pos_ >= tokens_.size()) {
          return false;  // depth limit drained the input
        }
      } else if (t->text == "read" || t->text == "write") {
        RefIr ref;
        if (ParseRef(&ref)) out->refs.push_back(std::move(ref));
      } else {
        Error(t->loc, "expected 'read', 'write', 'loop' or '}', got '" +
                          t->text + "'");
        SkipLine(t->loc.line);
      }
    }
  }

  bool ParseRef(RefIr* out) {
    const Token& rw = tokens_[pos_++];
    out->is_write = rw.text == "write";
    out->loc = rw.loc;
    const Token* obj = Take("object name");
    if (obj == nullptr) return false;
    out->object = ResolveObject(*obj, obj->text);
    const Token* kind = Take("subscript kind");
    if (kind == nullptr) return false;
    if (kind->text == "affine") {
      out->subscript.kind = core::Subscript::Kind::kAffine;
    } else if (kind->text == "stencil") {
      out->subscript.kind = core::Subscript::Kind::kNeighborhood;
    } else if (kind->text == "indirect") {
      out->subscript.kind = core::Subscript::Kind::kIndirect;
    } else if (kind->text == "opaque") {
      out->subscript.kind = core::Subscript::Kind::kOpaque;
    } else {
      Error(kind->loc, "unknown subscript kind '" + kind->text +
                           "' (affine|stencil|indirect|opaque)");
      SkipLine(rw.loc.line);
      return false;
    }
    std::string key, value;
    const Token* tok = nullptr;
    while (TakeAttr(&key, &value, &tok)) {
      if (key == "stride" &&
          out->subscript.kind == core::Subscript::Kind::kAffine) {
        ParseI64(*tok, value, &out->subscript.stride);
      } else if (key == "base" &&
                 (out->subscript.kind == core::Subscript::Kind::kAffine ||
                  out->subscript.kind ==
                      core::Subscript::Kind::kNeighborhood)) {
        ParseI64(*tok, value, &out->subscript.base);
      } else if (key == "offsets" &&
                 out->subscript.kind == core::Subscript::Kind::kNeighborhood) {
        out->subscript.offsets.clear();
        std::size_t start = 0;
        while (start <= value.size()) {
          const std::size_t comma = value.find(',', start);
          const std::string item = value.substr(
              start,
              comma == std::string::npos ? std::string::npos : comma - start);
          std::int64_t off = 0;
          if (!item.empty() && ParseI64(*tok, item, &off)) {
            out->subscript.offsets.push_back(off);
          }
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
        if (out->subscript.offsets.empty()) {
          Error(tok->loc, "stencil offsets=<int,int,...> names no offsets");
        }
      } else if (key == "via" &&
                 out->subscript.kind == core::Subscript::Kind::kIndirect) {
        out->subscript.index_object = ResolveObject(*tok, value);
      } else if (key == "elem") {
        std::uint64_t v = 0;
        if (ParseU64(*tok, value, &v) && v > 0) {
          out->element_bytes = static_cast<std::uint32_t>(v);
        }
      } else if (key == "rate") {
        ParseF64(*tok, value, &out->rate);
      } else {
        Error(tok->loc, "attribute '" + key + "' does not apply to a " +
                            kind->text + " reference");
      }
    }
    if (out->subscript.kind == core::Subscript::Kind::kIndirect &&
        out->subscript.index_object == SIZE_MAX) {
      Error(kind->loc, "indirect reference is missing via=<index-object>");
    }
    return out->object != SIZE_MAX;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ParseResult result_;
};

void SerializeLoop(const Module& m, const LoopIr& loop, int depth,
                   std::string* out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  *out += pad + "loop " + loop.name +
          " trips=" + std::to_string(loop.trip_count) +
          " insns=" + FormatDouble(loop.instructions_per_iteration) +
          " branch=" + FormatDouble(loop.branch_fraction) +
          " vector=" + FormatDouble(loop.vector_fraction) + " {\n";
  for (const RefIr& ref : loop.refs) {
    *out += pad + "  ";
    *out += ref.is_write ? "write " : "read ";
    *out += ref.object < m.objects.size() ? m.objects[ref.object].name
                                          : "?";
    switch (ref.subscript.kind) {
      case core::Subscript::Kind::kAffine:
        *out += " affine stride=" + std::to_string(ref.subscript.stride);
        if (ref.subscript.base != 0) {
          *out += " base=" + std::to_string(ref.subscript.base);
        }
        break;
      case core::Subscript::Kind::kNeighborhood: {
        *out += " stencil offsets=";
        for (std::size_t i = 0; i < ref.subscript.offsets.size(); ++i) {
          if (i > 0) *out += ",";
          *out += std::to_string(ref.subscript.offsets[i]);
        }
        if (ref.subscript.base != 0) {
          *out += " base=" + std::to_string(ref.subscript.base);
        }
        break;
      }
      case core::Subscript::Kind::kIndirect:
        *out += " indirect via=";
        *out += ref.subscript.index_object < m.objects.size()
                    ? m.objects[ref.subscript.index_object].name
                    : "?";
        break;
      case core::Subscript::Kind::kOpaque:
        *out += " opaque";
        break;
    }
    *out += " elem=" + std::to_string(ref.element_bytes) +
            " rate=" + FormatDouble(ref.rate) + "\n";
  }
  for (const LoopIr& child : loop.children) {
    SerializeLoop(m, child, depth + 1, out);
  }
  *out += pad + "}\n";
}

}  // namespace

ParseResult ParseKir(std::string_view text) { return Parser(text).Run(); }

ParseResult ParseKirFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    result.errors.push_back({{0, 0}, "cannot open '" + path + "'"});
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseKir(buf.str());
}

std::string SerializeKir(const Module& module) {
  std::string out = "kernel " + module.name + "\n\n";
  for (const ObjectDecl& obj : module.objects) {
    out += "object " + obj.name + " bytes=" + std::to_string(obj.bytes) +
           " elem=" + std::to_string(obj.element_bytes);
    if (obj.owner != kInvalidTask) {
      out += " owner=" + std::to_string(obj.owner);
    }
    if (!obj.pattern_hint.empty()) out += " pattern=" + obj.pattern_hint;
    out += "\n";
  }
  std::string registered;
  for (const ObjectDecl& obj : module.objects) {
    if (obj.registered) registered += " " + obj.name;
  }
  if (!registered.empty()) out += "register" + registered + "\n";
  for (const TaskDecl& task : module.tasks) {
    out += "\ntask " + std::to_string(task.task);
    if (!task.after.empty()) {
      out += " after ";
      for (std::size_t i = 0; i < task.after.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(task.after[i]);
      }
    }
    out += " {\n";
    for (const LoopIr& loop : task.loops) {
      SerializeLoop(module, loop, 1, &out);
    }
    out += "}\n";
  }
  return out;
}

std::string FormatParseError(const std::string& file, const ParseError& err) {
  std::string out = file.empty() ? "<kir>" : file;
  if (err.loc.valid()) {
    out += ":" + std::to_string(err.loc.line) + ":" +
           std::to_string(err.loc.col);
  }
  return out + ": error: " + err.message;
}

}  // namespace merch::analysis
