#include "analysis/passes.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/alpha.h"
#include "core/lowering.h"
#include "core/pattern_classifier.h"

namespace merch::analysis {
namespace {

PatternClass MergeClass(PatternClass a, PatternClass b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Span of offsets in elements (0 for empty).
std::int64_t OffsetSpan(const std::vector<std::int64_t>& offsets) {
  if (offsets.empty()) return 0;
  const auto [lo, hi] = std::minmax_element(offsets.begin(), offsets.end());
  return *hi - *lo;
}

/// Distinct bytes one (flattened) reference can touch. `executions` is
/// trip_count x rate.
std::uint64_t RefFootprint(const core::ArrayRef& ref, double executions,
                           std::uint64_t object_bytes) {
  double span = 0;
  switch (ClassifyRefClass(ref)) {
    case PatternClass::kScalar:
      // Degenerate single-line pattern: never charge the whole object.
      span = static_cast<double>(kCacheLineBytes);
      break;
    case PatternClass::kStream:
    case PatternClass::kStrided:
      span = executions *
             static_cast<double>(std::max<std::int64_t>(
                 1, std::abs(ref.subscript.stride))) *
             ref.element_bytes;
      break;
    case PatternClass::kStencil:
      span = (executions +
              static_cast<double>(OffsetSpan(ref.subscript.offsets))) *
             ref.element_bytes;
      break;
    case PatternClass::kOpaque:
    case PatternClass::kRandom:
      // Not statically boundable: the whole object is reachable.
      span = static_cast<double>(object_bytes);
      break;
  }
  if (object_bytes > 0) {
    span = std::min(span, static_cast<double>(object_bytes));
  }
  return static_cast<std::uint64_t>(span);
}

}  // namespace

const char* PatternClassName(PatternClass c) {
  switch (c) {
    case PatternClass::kScalar:
      return "Scalar";
    case PatternClass::kStream:
      return "Stream";
    case PatternClass::kStrided:
      return "Strided";
    case PatternClass::kStencil:
      return "Stencil";
    case PatternClass::kOpaque:
      return "Opaque";
    case PatternClass::kRandom:
      return "Random";
  }
  return "Opaque";
}

trace::AccessPattern ToTracePattern(PatternClass c) {
  switch (c) {
    case PatternClass::kScalar:
    case PatternClass::kStream:
      return trace::AccessPattern::kStream;
    case PatternClass::kStrided:
      return trace::AccessPattern::kStrided;
    case PatternClass::kStencil:
      return trace::AccessPattern::kStencil;
    case PatternClass::kOpaque:
      return trace::AccessPattern::kUnknown;
    case PatternClass::kRandom:
      return trace::AccessPattern::kRandom;
  }
  return trace::AccessPattern::kUnknown;
}

PatternClass ClassifyRefClass(const core::ArrayRef& ref) {
  switch (ref.subscript.kind) {
    case core::Subscript::Kind::kAffine:
      if (ref.subscript.stride == 0) return PatternClass::kScalar;
      return std::abs(ref.subscript.stride) <= 1 ? PatternClass::kStream
                                                 : PatternClass::kStrided;
    case core::Subscript::Kind::kNeighborhood:
      return ref.subscript.offsets.size() >= 2 ? PatternClass::kStencil
                                               : PatternClass::kStream;
    case core::Subscript::Kind::kIndirect:
      return PatternClass::kRandom;
    case core::Subscript::Kind::kOpaque:
      return PatternClass::kOpaque;
  }
  return PatternClass::kOpaque;
}

double AnalyticAlpha(PatternClass cls, std::uint32_t element_bytes,
                     std::int64_t stride, std::uint64_t s_base,
                     std::uint64_t s_new) {
  if (s_base == 0 || s_new == 0) return 1.0;
  std::uint64_t unit = 0;
  switch (cls) {
    case PatternClass::kScalar:
      // Size-invariant traffic: esti == prof requires alpha = size ratio.
      return static_cast<double>(s_new) / static_cast<double>(s_base);
    case PatternClass::kStream:
    case PatternClass::kStrided: {
      // One main-memory access per cache line for dense stepping; every
      // element lands on its own line once the stride clears the line.
      const std::uint64_t step =
          static_cast<std::uint64_t>(element_bytes) *
          static_cast<std::uint64_t>(std::max<std::int64_t>(
              1, std::abs(stride)));
      unit = std::max<std::uint64_t>(kCacheLineBytes, step);
      break;
    }
    case PatternClass::kStencil:
      // All neighborhood offsets share the sweep's just-fetched lines, so
      // the line itself stays the unit regardless of the point count.
      unit = kCacheLineBytes;
      break;
    case PatternClass::kOpaque:
    case PatternClass::kRandom:
      return 1.0;  // runtime refinement territory (Section 4)
  }
  const std::uint64_t units_base = (s_base + unit - 1) / unit;
  const std::uint64_t units_new = (s_new + unit - 1) / unit;
  return (static_cast<double>(s_new) * static_cast<double>(units_base)) /
         (static_cast<double>(s_base) * static_cast<double>(units_new));
}

double ProfiledAlpha(PatternClass cls, std::uint32_t element_bytes,
                     std::int64_t stride, std::uint64_t s_base,
                     std::uint64_t s_new) {
  switch (cls) {
    case PatternClass::kScalar:
      return s_base > 0
                 ? static_cast<double>(s_new) / static_cast<double>(s_base)
                 : 1.0;
    case PatternClass::kStream:
    case PatternClass::kStrided:
      return core::LinearAlpha(
          s_base, s_new, element_bytes,
          static_cast<std::uint32_t>(std::max<std::int64_t>(
              1, std::abs(stride))));
    case PatternClass::kStencil:
      return core::StencilAlphaOffline(element_bytes);
    case PatternClass::kOpaque:
    case PatternClass::kRandom:
      return 1.0;
  }
  return 1.0;
}

ModuleAnalysis Analyze(const Module& module) {
  ModuleAnalysis out;
  out.objects.resize(module.objects.size());
  for (std::size_t i = 0; i < module.objects.size(); ++i) {
    out.objects[i].object = i;
    out.objects[i].name = module.objects[i].name;
  }

  struct Tally {
    PatternClass cls = PatternClass::kScalar;
    bool referenced = false;
    double reads = 0, writes = 0, bytes = 0;
    std::uint64_t footprint = 0;
    std::int64_t stride = 1;           // widest affine stride seen
    std::uint32_t element_bytes = 8;   // of the heaviest ref
    double element_weight = -1;
    bool runtime_refined = false;
  };
  std::vector<Tally> tally(module.objects.size());

  const std::vector<core::TaskIr> tasks = module.ToCoreIr();
  std::set<int> distinct;
  for (const core::TaskIr& task : tasks) {
    std::vector<int> task_sweeps(module.objects.size(), 0);
    for (const core::LoopNest& loop : task.loops) {
      std::set<std::size_t> touched_here;
      for (const core::ArrayRef& ref : loop.refs) {
        const double executions =
            static_cast<double>(loop.trip_count) * ref.accesses_per_iteration;
        if (ref.object < tally.size()) {
          Tally& t = tally[ref.object];
          const PatternClass cls = ClassifyRefClass(ref);
          t.cls = t.referenced ? MergeClass(t.cls, cls) : cls;
          t.referenced = true;
          (ref.is_write ? t.writes : t.reads) += executions;
          t.bytes += executions * ref.element_bytes;
          if (executions > t.element_weight) {
            t.element_weight = executions;
            t.element_bytes = ref.element_bytes;
          }
          if (ref.subscript.kind == core::Subscript::Kind::kAffine) {
            t.stride = std::max<std::int64_t>(t.stride,
                                              std::abs(ref.subscript.stride));
          }
          if (cls == PatternClass::kOpaque || cls == PatternClass::kRandom) {
            t.runtime_refined = true;
          }
          t.footprint = std::max(
              t.footprint,
              RefFootprint(ref, executions, module.objects[ref.object].bytes));
          touched_here.insert(ref.object);
        }
        // The index array of an indirect reference is itself swept
        // sequentially (int32 indices, as in core lowering).
        const std::size_t via = ref.subscript.index_object;
        if (ref.subscript.kind == core::Subscript::Kind::kIndirect &&
            via < tally.size()) {
          Tally& t = tally[via];
          t.cls = t.referenced ? MergeClass(t.cls, PatternClass::kStream)
                               : PatternClass::kStream;
          t.referenced = true;
          t.reads += executions;
          t.bytes += executions * 4.0;
          if (executions > t.element_weight) {
            t.element_weight = executions;
            t.element_bytes = 4;
          }
          core::ArrayRef index_ref;
          index_ref.object = via;
          index_ref.subscript.kind = core::Subscript::Kind::kAffine;
          index_ref.subscript.stride = 1;
          index_ref.element_bytes = 4;
          t.footprint = std::max(
              t.footprint, RefFootprint(index_ref, executions,
                                        module.objects[via].bytes));
          touched_here.insert(via);
        }
      }
      for (const std::size_t obj : touched_here) ++task_sweeps[obj];
    }
    // Distinct labels are a per-task statement (Table 1 lists what each
    // task's code exhibits), so classify the task in isolation.
    const auto task_patterns =
        ClassifyTaskPatterns(task, module.objects.size());
    for (std::size_t i = 0; i < tally.size(); ++i) {
      out.objects[i].sweeps = std::max(out.objects[i].sweeps, task_sweeps[i]);
      if (task_sweeps[i] > 0) {
        distinct.insert(static_cast<int>(task_patterns[i]));
      }
    }
  }

  for (std::size_t i = 0; i < tally.size(); ++i) {
    const Tally& t = tally[i];
    ObjectReport& r = out.objects[i];
    r.referenced = t.referenced;
    if (!t.referenced) continue;
    r.pattern = t.cls;
    r.trace_pattern = ToTracePattern(t.cls);
    r.touched_accesses = t.reads + t.writes;
    r.touched_bytes = t.bytes;
    r.write_fraction =
        r.touched_accesses > 0 ? t.writes / r.touched_accesses : 0;
    r.footprint_bytes = t.footprint;
    r.runtime_refined = t.runtime_refined;
    r.reswept = r.sweeps >= 2;
    r.suggested_reuse_passes = std::max(1, r.sweeps);

    // Eq. 1 alpha under the doubling convention. The base size is the
    // declared object size (fall back to the derived footprint when the
    // declaration omits it).
    const std::uint64_t s_base =
        module.objects[i].bytes > 0 ? module.objects[i].bytes : t.footprint;
    r.analytic_alpha = !t.runtime_refined && t.cls != PatternClass::kOpaque &&
                       t.cls != PatternClass::kRandom && s_base > 0;
    if (r.analytic_alpha) {
      r.alpha = AnalyticAlpha(t.cls, t.element_bytes, t.stride, s_base,
                              2 * s_base);
      r.profiled_alpha = ProfiledAlpha(t.cls, t.element_bytes, t.stride,
                                       s_base, 2 * s_base);
    }
  }

  // Distinct paper labels (Table 1), kUnknown handled as Random downstream.
  for (const int p : distinct) {
    out.distinct.push_back(static_cast<trace::AccessPattern>(p));
  }
  return out;
}

std::vector<trace::AccessPattern> ClassifyTaskPatterns(
    const core::TaskIr& task, std::size_t num_objects) {
  std::vector<PatternClass> cls(num_objects, PatternClass::kScalar);
  std::vector<bool> seen(num_objects, false);
  for (const core::LoopNest& loop : task.loops) {
    for (const core::ArrayRef& ref : loop.refs) {
      if (ref.object < num_objects) {
        const PatternClass c = ClassifyRefClass(ref);
        cls[ref.object] = seen[ref.object] ? MergeClass(cls[ref.object], c)
                                           : c;
        seen[ref.object] = true;
      }
      const std::size_t via = ref.subscript.index_object;
      if (ref.subscript.kind == core::Subscript::Kind::kIndirect &&
          via < num_objects) {
        cls[via] = seen[via] ? MergeClass(cls[via], PatternClass::kStream)
                             : PatternClass::kStream;
        seen[via] = true;
      }
    }
  }
  std::vector<trace::AccessPattern> out(num_objects,
                                        trace::AccessPattern::kUnknown);
  for (std::size_t i = 0; i < num_objects; ++i) {
    if (seen[i]) out[i] = ToTracePattern(cls[i]);
  }
  return out;
}

std::vector<sim::Kernel> LowerTask(const core::TaskIr& task,
                                   std::size_t num_objects) {
  const auto patterns = ClassifyTaskPatterns(task, num_objects);
  std::vector<sim::Kernel> kernels;
  kernels.reserve(task.loops.size());
  for (const core::LoopNest& loop : task.loops) {
    kernels.push_back(core::LowerLoop(loop, patterns));
  }
  return kernels;
}

}  // namespace merch::analysis
