#include "analysis/ir.h"

namespace merch::analysis {
namespace {

void FlattenLoop(const LoopIr& loop, std::uint64_t outer_trips,
                 std::vector<core::LoopNest>* out) {
  const std::uint64_t trips = outer_trips * std::max<std::uint64_t>(
                                               1, loop.trip_count);
  if (!loop.refs.empty() || loop.children.empty()) {
    core::LoopNest nest;
    nest.name = loop.name;
    nest.trip_count = trips;
    nest.instructions_per_iteration = loop.instructions_per_iteration;
    nest.branch_fraction = loop.branch_fraction;
    nest.vector_fraction = loop.vector_fraction;
    nest.refs.reserve(loop.refs.size());
    for (const RefIr& ref : loop.refs) {
      nest.refs.push_back(core::ArrayRef{
          .object = ref.object,
          .subscript = ref.subscript,
          .is_write = ref.is_write,
          .element_bytes = ref.element_bytes,
          .accesses_per_iteration = ref.rate});
    }
    out->push_back(std::move(nest));
  }
  for (const LoopIr& child : loop.children) FlattenLoop(child, trips, out);
}

}  // namespace

std::size_t Module::FindObject(std::string_view name) const {
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].name == name) return i;
  }
  return SIZE_MAX;
}

std::vector<core::TaskIr> Module::ToCoreIr() const {
  std::vector<core::TaskIr> out;
  out.reserve(tasks.size());
  for (const TaskDecl& task : tasks) {
    core::TaskIr ir;
    ir.task = task.task;
    for (const LoopIr& loop : task.loops) FlattenLoop(loop, 1, &ir.loops);
    out.push_back(std::move(ir));
  }
  return out;
}

Module ModuleFromWorkload(const sim::Workload& workload,
                          const std::vector<core::TaskIr>& task_irs) {
  Module m;
  m.name = workload.name;
  m.fork_join = true;  // regions are barrier-synchronized parallel sections
  m.objects.reserve(workload.objects.size());
  for (const sim::ObjectDecl& obj : workload.objects) {
    ObjectDecl decl;
    decl.name = obj.name;
    decl.bytes = obj.bytes;
    decl.owner = obj.owner;
    decl.registered = true;  // builders register every workload object
    m.objects.push_back(std::move(decl));
  }
  m.tasks.reserve(task_irs.size());
  for (const core::TaskIr& ir : task_irs) {
    TaskDecl task;
    task.task = ir.task;
    task.loops.reserve(ir.loops.size());
    for (const core::LoopNest& nest : ir.loops) {
      LoopIr loop;
      loop.name = nest.name;
      loop.trip_count = nest.trip_count;
      loop.instructions_per_iteration = nest.instructions_per_iteration;
      loop.branch_fraction = nest.branch_fraction;
      loop.vector_fraction = nest.vector_fraction;
      loop.refs.reserve(nest.refs.size());
      for (const core::ArrayRef& ref : nest.refs) {
        RefIr r;
        r.object = ref.object;
        r.subscript = ref.subscript;
        r.is_write = ref.is_write;
        r.element_bytes = ref.element_bytes;
        r.rate = ref.accesses_per_iteration;
        loop.refs.push_back(std::move(r));
      }
      task.loops.push_back(std::move(loop));
    }
    m.tasks.push_back(std::move(task));
  }
  return m;
}

}  // namespace merch::analysis
