// Inter-task dependence engine: static task-DAG inference, race
// detection, and placement-interference lint.
//
// The engine intersects per-task read/write region summaries
// (analysis/summaries.h) pairwise to derive RAW/WAR/WAW dependence edges
// with byte-overlap evidence, and compares the inferred conflicts against
// the *declared* ordering (`task N after M,K` in the .kir grammar):
//
//   - a conflicting access pair (>=1 write, overlapping hulls) between
//     tasks with no declared happens-before path is a *race* — an error
//     when the overlap evidence is exact (neither side widened), a
//     warning when an indirect/opaque ref widened the footprint,
//   - a declared edge whose two tasks share no conflicting bytes is
//     *over-synchronization* — latent parallelism the scheduler loses,
//   - concurrent (unordered) tasks whose combined DRAM-hungry footprints
//     exceed the fast tier's capacity are flagged as *placement
//     interference*: the static early warning for the load imbalance the
//     paper's Algorithm 1 fights at runtime (some of those tasks must run
//     from the slow tier no matter what the greedy decides).
//
// Modules bridged from fork-join application bundles (Module::fork_join)
// soften the race rules: concurrent writes to *shared* objects are the
// runtime's partitioned streams (note severity), and only an exact
// conflicting write to another task's *owned* object stays an error — the
// PlacementService gate rejects that the way it rejects lint errors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/summaries.h"
#include "hm/tier.h"

namespace merch::analysis {

enum class DepKind {
  kRaw = 0,  // read-after-write (true dependence)
  kWar = 1,  // write-after-read (anti dependence)
  kWaw = 2,  // write-after-write (output dependence)
};

const char* DepKindName(DepKind k);

/// One inferred dependence between two tasks on one object. `from`
/// happens (or must happen) before `to`: for declared-ordered pairs this
/// follows the happens-before direction, for unordered conflicting pairs
/// the task declaration order.
struct DepEdge {
  std::size_t from = 0;  // index into TaskGraph::summary.tasks
  std::size_t to = 0;
  TaskId from_task = 0;
  TaskId to_task = 0;
  DepKind kind = DepKind::kRaw;
  std::size_t object = SIZE_MAX;
  std::uint64_t overlap_bytes = 0;
  /// Neither side's footprint was widened: the overlapping hulls are
  /// byte-accurate sweep ranges, so the conflict provably happens.
  bool exact = false;
  /// The pair has a declared happens-before path covering this edge.
  bool declared = false;
};

struct TaskGraph {
  ModuleSummary summary;
  /// Direct declared edges as (predecessor index, successor index).
  std::vector<std::pair<std::size_t, std::size_t>> declared;
  /// All inferred dependences, declared-covered or not.
  std::vector<DepEdge> edges;
  /// cyclic == true when the declared edges contain a cycle (ordering is
  /// undefined; the lint reports it and race analysis is suppressed).
  bool cyclic = false;

  /// Happens-before in either direction (declared-path reachability).
  bool Ordered(std::size_t a, std::size_t b) const;
  /// Index of task id `t` in summary.tasks, or SIZE_MAX.
  std::size_t IndexOf(TaskId t) const;

  /// reach_[a][b]: a declared path orders task a before task b.
  std::vector<std::vector<bool>> reach_;
};

/// Build the task graph: resolve declared `after` edges, compute
/// happens-before reachability, and infer dependence edges from pairwise
/// summary intersection.
TaskGraph BuildTaskGraph(const Module& module, ModuleSummary summary);

/// Dependence-level findings: races, over-synchronization, unknown or
/// cyclic declared edges, and placement interference against `hm`'s fast
/// tier. Severities follow Module::fork_join as described above.
std::vector<Finding> LintDependences(const Module& module,
                                     const TaskGraph& graph,
                                     const hm::HmSpec& hm);

}  // namespace merch::analysis
