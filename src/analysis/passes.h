// Static analysis passes over the kernel IR (paper Section 4).
//
// Per referenced object the passes derive:
//   - a pattern class (a refinement of the 4-way paper label: scalar
//     broadcasts get their own degenerate class so footprint estimation
//     does not charge the whole object),
//   - an *analytic* alpha (Eq. 1's scaling factor) computed directly from
//     stride / offset / trip-count structure for affine and neighborhood
//     subscripts, cross-checked against the profiled alpha table in
//     core/alpha; indirect and opaque references fall back to runtime
//     refinement exactly as Section 4 prescribes,
//   - static footprint (distinct bytes reachable) and touched-bytes
//     estimates,
//   - a reuse bucket (single-pass vs re-swept) feeding cachesim's
//     reuse-amortisation parameter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ir.h"
#include "core/kernel_ir.h"
#include "sim/workload.h"
#include "trace/pattern.h"

namespace merch::analysis {

/// Refined per-reference classification. Order = merge severity (least to
/// most cache-hostile); kScalar maps to the paper's Stream label but keeps
/// a one-line footprint.
enum class PatternClass {
  kScalar = 0,   // affine stride 0: A[c], one cache line total
  kStream = 1,   // affine |stride| == 1
  kStrided = 2,  // affine |stride| > 1
  kStencil = 3,  // multi-offset neighborhood
  kOpaque = 4,   // statically unanalysable; alpha refined at runtime
  kRandom = 5,   // indirect gather/scatter; alpha refined at runtime
};

const char* PatternClassName(PatternClass c);

/// Collapse to the paper's 4-way label (+Unknown): kScalar -> Stream,
/// kOpaque -> Unknown (treated as Random downstream).
trace::AccessPattern ToTracePattern(PatternClass c);

/// Classify one reference considered alone.
PatternClass ClassifyRefClass(const core::ArrayRef& ref);

/// Analytic alpha (Eq. 1) for scaling an object of `s_base` bytes to
/// `s_new` bytes, derived purely from subscript structure: the unit of one
/// main-memory access is a cache line for dense stepping and one element's
/// line for wide strides; neighborhood offsets share their sweep's lines.
/// Scalar broadcasts are size-invariant (alpha = size ratio). Returns 1.0
/// (runtime-refined) for kOpaque/kRandom.
double AnalyticAlpha(PatternClass cls, std::uint32_t element_bytes,
                     std::int64_t stride, std::uint64_t s_base,
                     std::uint64_t s_new);

/// The profiled-alpha table entry from core/alpha for the same scaling
/// (LinearAlpha for affine, StencilAlphaOffline for stencils) — the
/// cross-check target for AnalyticAlpha.
double ProfiledAlpha(PatternClass cls, std::uint32_t element_bytes,
                     std::int64_t stride, std::uint64_t s_base,
                     std::uint64_t s_new);

/// Everything the passes know about one object.
struct ObjectReport {
  std::size_t object = SIZE_MAX;
  std::string name;
  PatternClass pattern = PatternClass::kOpaque;  // least cache-friendly ref
  trace::AccessPattern trace_pattern = trace::AccessPattern::kUnknown;
  bool referenced = false;

  /// Eq. 1 alpha for doubling the object (s_new = 2 * s_base), plus the
  /// profiled table's value under the same convention. `analytic_alpha`
  /// is false when the object needs runtime refinement instead.
  bool analytic_alpha = false;
  double alpha = 1.0;
  double profiled_alpha = 1.0;

  std::uint64_t footprint_bytes = 0;  // distinct bytes statically reachable
  double touched_accesses = 0;        // program-level accesses per instance
  double touched_bytes = 0;
  double write_fraction = 0;

  /// Reuse bucket: number of kernels (per task, max across tasks) that
  /// sweep the object. `reswept` objects amortise cold misses when
  /// cache-resident; `suggested_reuse_passes` feeds
  /// cachesim::MainMemoryMissRate's amortisation parameter.
  int sweeps = 0;
  bool reswept = false;
  double suggested_reuse_passes = 1.0;

  bool runtime_refined = false;  // has indirect/opaque refs (Section 4)
};

struct ModuleAnalysis {
  std::vector<ObjectReport> objects;  // one per module object, in order
  /// Distinct paper-label patterns across referenced objects (Table 1
  /// rows), in enum order.
  std::vector<trace::AccessPattern> distinct;
};

ModuleAnalysis Analyze(const Module& module);

/// Classify-and-lower one core task through the analysis pass: the same
/// result LowerTask in core/lowering produces, but with the analysis
/// classifier as the single pattern authority. The app builders route
/// through this.
std::vector<sim::Kernel> LowerTask(const core::TaskIr& task,
                                   std::size_t num_objects);

/// Per-object paper labels for one core task (parity-compatible with
/// core::ClassifyTask; unreferenced objects get kUnknown).
std::vector<trace::AccessPattern> ClassifyTaskPatterns(
    const core::TaskIr& task, std::size_t num_objects);

}  // namespace merch::analysis
