// Textual front-end for the kernel IR: `.kir` files.
//
// Grammar (whitespace-separated tokens, `#` starts a comment):
//
//   kernel <name>
//   object <name> bytes=<size> [elem=<n>] [owner=<task>|owner=shared]
//                 [pattern=stream|strided|stencil|random]
//   register <name> [<name> ...]          # the LB_HM_config call
//   task <id> [after <id>,<id>,...] {     # declared ordering edges
//     loop <name> trips=<n> [insns=<f>] [branch=<f>] [vector=<f>] {
//       read|write <object> affine [stride=<int>] [base=<elem-index>]
//                           [elem=<n>] [rate=<f>]
//       read|write <object> stencil offsets=<int>,<int>,...
//                           [base=<elem-index>] [...]
//       read|write <object> indirect via=<object> [...]
//       read|write <object> opaque [...]
//       loop ... { ... }                  # nests; trip counts multiply
//     }
//   }
//
// `after` declares happens-before edges for the inter-task dependence
// analysis (analysis/depgraph.h): a task may not start before its listed
// predecessors finish. `base=` gives an affine/stencil sweep's starting
// element so concurrent tasks can prove their slices of a shared object
// disjoint. Sizes accept KiB/MiB/GiB/TiB suffixes; trip counts accept
// 10-based scientific shorthand (`trips=1e6`). Loop nests deeper than
// kMaxLoopDepth are a parse error (robustness against adversarial input).
// Parse errors carry precise 1-based line:column locations. SerializeKir
// emits a canonical form that parses back to a structurally identical
// Module (round-trip property).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/ir.h"

namespace merch::analysis {

/// Maximum loop-nest depth the parser accepts. Deeper input (hand-written
/// kernels never exceed a handful of levels) is rejected with a located
/// error instead of risking recursion-driven stack exhaustion.
inline constexpr int kMaxLoopDepth = 64;

struct ParseError {
  SourceLoc loc;
  std::string message;
};

struct ParseResult {
  Module module;
  std::vector<ParseError> errors;
  bool ok() const { return errors.empty(); }
};

/// Parse `.kir` text. On errors the returned module holds whatever was
/// recovered before the first error in each statement.
ParseResult ParseKir(std::string_view text);

/// Parse a `.kir` file; an unreadable file yields a single error at 0:0.
ParseResult ParseKirFile(const std::string& path);

/// Canonical textual form of a module. Parsing the output reproduces the
/// module exactly (structural round-trip).
std::string SerializeKir(const Module& module);

/// "file:line:col: error: message" (file may be empty).
std::string FormatParseError(const std::string& file, const ParseError& err);

}  // namespace merch::analysis
