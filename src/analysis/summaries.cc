#include "analysis/summaries.h"

#include <algorithm>
#include <cmath>

namespace merch::analysis {
namespace {

/// Clamp a (possibly huge) double byte position into [0, limit].
std::uint64_t ClampBytes(double v, std::uint64_t limit) {
  if (!(v > 0)) return 0;
  const double lim = static_cast<double>(limit);
  return v >= lim ? limit : static_cast<std::uint64_t>(v);
}

PatternClass MergeClass(PatternClass a, PatternClass b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Find-or-create the (object, direction) summary in `list`, keeping it
/// sorted by object index.
AccessSummary* Slot(std::vector<AccessSummary>* list, std::size_t object,
                    bool is_write) {
  auto it = std::lower_bound(
      list->begin(), list->end(), object,
      [](const AccessSummary& s, std::size_t o) { return s.object < o; });
  if (it != list->end() && it->object == object) return &*it;
  AccessSummary fresh;
  fresh.object = object;
  fresh.is_write = is_write;
  return &*list->insert(it, fresh);
}

/// Fold one reference's hull into the task's summaries.
void Fold(AccessSummary* s, const ByteInterval& hull, bool widened,
          double executions, PatternClass cls, SourceLoc loc) {
  if (s->accesses == 0 && s->bytes.empty()) {
    s->bytes = hull;
    s->pattern = cls;
    s->loc = loc;
  } else {
    s->bytes.lo = std::min(s->bytes.lo, hull.lo);
    s->bytes.hi = std::max(s->bytes.hi, hull.hi);
    s->pattern = MergeClass(s->pattern, cls);
    if (!s->loc.valid()) s->loc = loc;
  }
  s->widened = s->widened || widened;
  s->accesses += executions;
}

}  // namespace

std::uint64_t IntervalOverlap(const ByteInterval& a, const ByteInterval& b) {
  const std::uint64_t lo = std::max(a.lo, b.lo);
  const std::uint64_t hi = std::min(a.hi, b.hi);
  return hi > lo ? hi - lo : 0;
}

ByteInterval RefInterval(const core::ArrayRef& ref, std::uint64_t trip_count,
                         std::uint64_t object_bytes, bool* widened) {
  *widened = false;
  const double e = static_cast<double>(ref.element_bytes);
  const double n = static_cast<double>(std::max<std::uint64_t>(1, trip_count));
  const double b = static_cast<double>(ref.subscript.base);
  double elem_lo = 0, elem_hi = 0;
  switch (ref.subscript.kind) {
    case core::Subscript::Kind::kAffine: {
      const double s = static_cast<double>(ref.subscript.stride);
      if (s >= 0) {
        elem_lo = b;
        elem_hi = b + (n - 1) * s + 1;
      } else {
        elem_lo = b + (n - 1) * s;
        elem_hi = b + 1;
      }
      break;
    }
    case core::Subscript::Kind::kNeighborhood: {
      double min_off = 0, max_off = 0;
      if (!ref.subscript.offsets.empty()) {
        const auto [lo_it, hi_it] = std::minmax_element(
            ref.subscript.offsets.begin(), ref.subscript.offsets.end());
        min_off = static_cast<double>(*lo_it);
        max_off = static_cast<double>(*hi_it);
      }
      elem_lo = b + min_off;
      elem_hi = b + (n - 1) + max_off + 1;
      break;
    }
    case core::Subscript::Kind::kIndirect:
    case core::Subscript::Kind::kOpaque:
      // Runtime data picks the element: every byte is reachable.
      *widened = true;
      return {0, object_bytes};
  }
  ByteInterval out;
  out.lo = ClampBytes(elem_lo * e, object_bytes);
  out.hi = ClampBytes(elem_hi * e, object_bytes);
  return out;
}

const AccessSummary* FindSummary(const std::vector<AccessSummary>& list,
                                 std::size_t object) {
  auto it = std::lower_bound(
      list.begin(), list.end(), object,
      [](const AccessSummary& s, std::size_t o) { return s.object < o; });
  return it != list.end() && it->object == object ? &*it : nullptr;
}

ModuleSummary Summarize(const Module& module) {
  ModuleSummary out;
  out.tasks.reserve(module.tasks.size());
  const std::vector<core::TaskIr> tasks = module.ToCoreIr();
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    TaskSummary ts;
    ts.task = tasks[ti].task;
    ts.after = module.tasks[ti].after;
    ts.loc = module.tasks[ti].loc;
    for (const core::LoopNest& loop : tasks[ti].loops) {
      for (const core::ArrayRef& ref : loop.refs) {
        if (ref.object >= module.objects.size()) continue;
        const std::uint64_t obj_bytes = module.objects[ref.object].bytes;
        bool widened = false;
        const ByteInterval hull =
            RefInterval(ref, loop.trip_count, obj_bytes, &widened);
        const double executions = static_cast<double>(loop.trip_count) *
                                  ref.accesses_per_iteration;
        // RefIr carries no SourceLoc once flattened; use the task's.
        Fold(Slot(ref.is_write ? &ts.writes : &ts.reads, ref.object,
                  ref.is_write),
             hull, widened, executions, ClassifyRefClass(ref), ts.loc);
        // An indirect gather sequentially sweeps its index object (int32
        // indices, mirroring core lowering) — that read participates in
        // dependences too: a task rewriting another task's index array is
        // a real RAW/WAR hazard.
        const std::size_t via = ref.subscript.index_object;
        if (ref.subscript.kind == core::Subscript::Kind::kIndirect &&
            via < module.objects.size()) {
          core::ArrayRef index_ref;
          index_ref.object = via;
          index_ref.subscript.kind = core::Subscript::Kind::kAffine;
          index_ref.subscript.stride = 1;
          index_ref.element_bytes = 4;
          bool iw = false;
          const ByteInterval ih = RefInterval(
              index_ref, loop.trip_count, module.objects[via].bytes, &iw);
          Fold(Slot(&ts.reads, via, false), ih, iw, executions,
               PatternClass::kStream, ts.loc);
        }
      }
    }
    // Per-object union of read and write hulls -> footprint and the
    // DRAM-hungry share (latency-bound or write-heavy objects).
    std::size_t ri = 0, wi = 0;
    while (ri < ts.reads.size() || wi < ts.writes.size()) {
      const AccessSummary* r =
          ri < ts.reads.size() ? &ts.reads[ri] : nullptr;
      const AccessSummary* w =
          wi < ts.writes.size() ? &ts.writes[wi] : nullptr;
      if (r != nullptr && w != nullptr && r->object == w->object) {
        ByteInterval u{std::min(r->bytes.lo, w->bytes.lo),
                       std::max(r->bytes.hi, w->bytes.hi)};
        const PatternClass cls = MergeClass(r->pattern, w->pattern);
        const double total = r->accesses + w->accesses;
        const double wf = total > 0 ? w->accesses / total : 0;
        ts.footprint_bytes += u.size();
        if (cls == PatternClass::kRandom || cls == PatternClass::kOpaque ||
            wf >= 0.5) {
          ts.dram_hungry_bytes += u.size();
        }
        ++ri;
        ++wi;
      } else if (w == nullptr || (r != nullptr && r->object < w->object)) {
        ts.footprint_bytes += r->bytes.size();
        if (r->pattern == PatternClass::kRandom ||
            r->pattern == PatternClass::kOpaque) {
          ts.dram_hungry_bytes += r->bytes.size();
        }
        ++ri;
      } else {
        ts.footprint_bytes += w->bytes.size();
        // Write-only regions are always hungry: PM writes are the 4.74x
        // asymmetric direction (paper Fig. 3).
        ts.dram_hungry_bytes += w->bytes.size();
        ++wi;
      }
    }
    out.tasks.push_back(std::move(ts));
  }
  return out;
}

}  // namespace merch::analysis
