// Placement lint: diagnostics over the kernel IR plus what the
// application told the LB_HM_config registry.
//
// The lint walks a Module (parsed from a .kir file or bridged from an app
// bundle) together with the analysis results and reports actionable
// findings: objects referenced but never registered, opaque subscripts
// that silently degrade to runtime refinement, write-heavy objects (PM
// write asymmetry, paper Fig. 3), index arrays misregistered as random,
// and dead object declarations. Error-severity findings make `merchctl
// analyze` exit non-zero and the PlacementService reject the request.
#pragma once

#include <string>
#include <vector>

#include "analysis/ir.h"
#include "analysis/passes.h"

namespace merch::analysis {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity s);

struct Finding {
  Severity severity = Severity::kNote;
  /// Stable kebab-case code, e.g. "unregistered-object".
  std::string code;
  std::string message;
  std::string object;  // the object concerned, when there is one
  SourceLoc loc;
};

/// Run every lint check. `analysis` must come from Analyze(module).
std::vector<Finding> Lint(const Module& module,
                          const ModuleAnalysis& analysis);

bool HasErrors(const std::vector<Finding>& findings);

/// "file:line:col: severity: [code] message" (location omitted for IR
/// built in memory).
std::string FormatFinding(const std::string& file, const Finding& finding);

}  // namespace merch::analysis
