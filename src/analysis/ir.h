// Extended kernel IR for the Spindle-style static analysis subsystem.
//
// Kernels become *data* instead of C++: a textual DSL (`.kir` files, see
// analysis/parser.h) describes object declarations, LB_HM_config
// registration, and per-task nested loop nests with affine / neighborhood
// / indirect / opaque subscripts. The analysis passes (analysis/passes.h)
// and the placement lint (analysis/lint.h) run over this Module; the same
// Module is also constructible from an application bundle's in-memory IR
// (ModuleFromWorkload) so every path — .kir files, the five app builders,
// the PlacementService gate, bench/tab1_patterns — shares one analysis.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/kernel_ir.h"
#include "sim/workload.h"

namespace merch::analysis {

/// 1-based position inside a .kir file; {0, 0} for IR built in memory.
struct SourceLoc {
  int line = 0;
  int col = 0;
  bool valid() const { return line > 0; }
};

/// One declared data object (what the application would hand to
/// LB_HM_config, plus what the user *claimed* about it).
struct ObjectDecl {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint32_t element_bytes = 8;
  TaskId owner = kInvalidTask;
  /// Registered with LB_HM_config (a `register` statement in the DSL).
  bool registered = false;
  /// Optional user-declared pattern hint ("stream", "strided", "stencil",
  /// "random") — the lint cross-checks it against the derived pattern.
  std::string pattern_hint;
  SourceLoc loc;
};

/// One memory reference inside a loop body. Reuses the core subscript
/// forms; `rate` is executions per iteration of the innermost enclosing
/// loop (fractional for data-dependent inner scans).
struct RefIr {
  std::size_t object = SIZE_MAX;
  core::Subscript subscript;
  bool is_write = false;
  std::uint32_t element_bytes = 8;
  double rate = 1.0;
  SourceLoc loc;
};

/// A counted loop: references plus nested child loops. Trip counts
/// multiply down the nest when flattening to the core IR.
struct LoopIr {
  std::string name;
  std::uint64_t trip_count = 0;
  double instructions_per_iteration = 4.0;
  double branch_fraction = 0.05;
  double vector_fraction = 0.2;
  std::vector<RefIr> refs;
  std::vector<LoopIr> children;
  SourceLoc loc;
};

struct TaskDecl {
  TaskId task = 0;
  /// Declared predecessors (`task N after M,K { ... }`): this task may not
  /// start until every listed task has finished. Sorted and deduplicated
  /// by the parser; the dependence engine treats the transitive closure of
  /// these edges as the program's happens-before order.
  std::vector<TaskId> after;
  std::vector<LoopIr> loops;
  SourceLoc loc;
};

struct Module {
  std::string name;
  std::vector<ObjectDecl> objects;
  std::vector<TaskDecl> tasks;

  /// True for modules bridged from an application bundle's fork-join
  /// regions (ModuleFromWorkload). Fork-join tasks are all concurrent but
  /// the runtime model guarantees each task writes its own slice of any
  /// shared stream, so the race detector reports statically overlapping
  /// writes to *shared* objects as notes (assumed partitioned) instead of
  /// errors. Textual `.kir` programs default to task-DAG semantics where
  /// an unordered conflict is a hard race.
  bool fork_join = false;

  /// Index of the object named `name`, or SIZE_MAX.
  std::size_t FindObject(std::string_view name) const;

  /// Flatten to the core IR the classifier/lowering consume: nested loops
  /// become a depth-first sequence of LoopNests with multiplied trip
  /// counts (a ref at depth d executes ancestors' trips × its loop's
  /// trips times).
  std::vector<core::TaskIr> ToCoreIr() const;
};

/// Bridge from an application bundle: the workload's registered objects
/// plus its per-task region-0 kernel IRs become a Module (every object
/// registered — the builders call LB_HM_config for all of them).
Module ModuleFromWorkload(const sim::Workload& workload,
                          const std::vector<core::TaskIr>& task_irs);

}  // namespace merch::analysis
