// Rendering of analysis + lint results for `merchctl analyze`.
#pragma once

#include <string>
#include <vector>

#include "analysis/ir.h"
#include "analysis/lint.h"
#include "analysis/passes.h"

namespace merch::analysis {

/// Human-readable report: module summary, per-object table (pattern,
/// analytic alpha + profiled cross-check, footprint, touched bytes, reuse
/// bucket, write share), then the lint findings.
std::string TextReport(const std::string& file, const Module& module,
                       const ModuleAnalysis& analysis,
                       const std::vector<Finding>& findings);

/// The same content as a JSON document.
std::string JsonReport(const std::string& file, const Module& module,
                       const ModuleAnalysis& analysis,
                       const std::vector<Finding>& findings);

}  // namespace merch::analysis
