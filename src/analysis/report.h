// Rendering of analysis + lint results for `merchctl analyze`.
#pragma once

#include <string>
#include <vector>

#include "analysis/depgraph.h"
#include "analysis/ir.h"
#include "analysis/lint.h"
#include "analysis/passes.h"

namespace merch::analysis {

/// Human-readable report: module summary, per-object table (pattern,
/// analytic alpha + profiled cross-check, footprint, touched bytes, reuse
/// bucket, write share), then the lint findings.
std::string TextReport(const std::string& file, const Module& module,
                       const ModuleAnalysis& analysis,
                       const std::vector<Finding>& findings);

/// The same content as a JSON document.
std::string JsonReport(const std::string& file, const Module& module,
                       const ModuleAnalysis& analysis,
                       const std::vector<Finding>& findings);

/// Task-DAG report (`merchctl analyze --dag`): per-task footprint table,
/// inferred dependence edges with byte-overlap evidence, and the
/// dependence-level findings.
std::string DagTextReport(const std::string& file, const Module& module,
                          const TaskGraph& graph,
                          const std::vector<Finding>& findings);

/// The task graph as a JSON document (`--dag --json`): tasks (footprint,
/// DRAM-hungry bytes, declared predecessors), edges (kind, object,
/// overlap, exact/declared bits), and findings.
std::string DagJsonReport(const std::string& file, const Module& module,
                          const TaskGraph& graph,
                          const std::vector<Finding>& findings);

/// The task graph as a Graphviz digraph (`--dag --dot`). Solid edges are
/// declared-covered dependences, dashed red edges are unordered conflicts
/// (races), dotted edges are declared-only orderings with no data flow.
std::string DagDotReport(const Module& module, const TaskGraph& graph);

}  // namespace merch::analysis
