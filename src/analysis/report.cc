#include "analysis/report.h"

#include <cstdio>

#include "common/table.h"

namespace merch::analysis {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string TextReport(const std::string& file, const Module& module,
                       const ModuleAnalysis& analysis,
                       const std::vector<Finding>& findings) {
  std::string out = "kernel " + module.name;
  if (!file.empty()) out += " (" + file + ")";
  out += ": " + std::to_string(module.objects.size()) + " objects, " +
         std::to_string(module.tasks.size()) + " tasks\n\n";

  TextTable table({"object", "pattern", "alpha", "alpha-src", "footprint",
                   "touched", "reuse", "writes"});
  for (const ObjectReport& r : analysis.objects) {
    if (!r.referenced) {
      table.AddRow({r.name, "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow(
        {r.name, PatternClassName(r.pattern),
         r.analytic_alpha ? TextTable::Num(r.alpha, 3) : "1.000",
         r.analytic_alpha ? "analytic" : "runtime",
         FormatBytes(r.footprint_bytes),
         FormatBytes(static_cast<std::uint64_t>(r.touched_bytes)),
         r.reswept ? "re-swept x" + std::to_string(r.sweeps) : "single-pass",
         TextTable::Pct(r.write_fraction, 0)});
  }
  out += table.Render();

  out += "\nlint:\n";
  if (findings.empty()) {
    out += "  clean — no findings\n";
  }
  std::size_t errors = 0, warnings = 0;
  for (const Finding& f : findings) {
    out += "  " + FormatFinding(file, f) + "\n";
    if (f.severity == Severity::kError) ++errors;
    if (f.severity == Severity::kWarning) ++warnings;
  }
  out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
         " warning(s)\n";
  return out;
}

std::string JsonReport(const std::string& file, const Module& module,
                       const ModuleAnalysis& analysis,
                       const std::vector<Finding>& findings) {
  std::string out = "{\n  \"kernel\": \"" + JsonEscape(module.name) +
                    "\",\n  \"file\": \"" + JsonEscape(file) +
                    "\",\n  \"objects\": [\n";
  for (std::size_t i = 0; i < analysis.objects.size(); ++i) {
    const ObjectReport& r = analysis.objects[i];
    out += "    {\"name\": \"" + JsonEscape(r.name) + "\"";
    out += ", \"referenced\": ";
    out += r.referenced ? "true" : "false";
    if (r.referenced) {
      out += std::string(", \"pattern\": \"") + PatternClassName(r.pattern) +
             "\"";
      out += std::string(", \"paper_pattern\": \"") +
             trace::PatternName(r.trace_pattern) + "\"";
      out += ", \"alpha\": " + JsonNum(r.alpha);
      out += std::string(", \"alpha_source\": \"") +
             (r.analytic_alpha ? "analytic" : "runtime") + "\"";
      if (r.analytic_alpha) {
        out += ", \"profiled_alpha\": " + JsonNum(r.profiled_alpha);
      }
      out += ", \"footprint_bytes\": " +
             std::to_string(r.footprint_bytes);
      out += ", \"touched_bytes\": " + JsonNum(r.touched_bytes);
      out += ", \"write_fraction\": " + JsonNum(r.write_fraction);
      out += ", \"sweeps\": " + std::to_string(r.sweeps);
      out += std::string(", \"reuse\": \"") +
             (r.reswept ? "re-swept" : "single-pass") + "\"";
    }
    out += i + 1 < analysis.objects.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += std::string("    {\"severity\": \"") + SeverityName(f.severity) +
           "\", \"code\": \"" + JsonEscape(f.code) + "\", \"object\": \"" +
           JsonEscape(f.object) + "\", \"line\": " +
           std::to_string(f.loc.line) + ", \"message\": \"" +
           JsonEscape(f.message) + "\"";
    out += i + 1 < findings.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace merch::analysis
