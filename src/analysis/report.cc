#include "analysis/report.h"

#include <cstdio>

#include "common/table.h"

namespace merch::analysis {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string TextReport(const std::string& file, const Module& module,
                       const ModuleAnalysis& analysis,
                       const std::vector<Finding>& findings) {
  std::string out = "kernel " + module.name;
  if (!file.empty()) out += " (" + file + ")";
  out += ": " + std::to_string(module.objects.size()) + " objects, " +
         std::to_string(module.tasks.size()) + " tasks\n\n";

  TextTable table({"object", "pattern", "alpha", "alpha-src", "footprint",
                   "touched", "reuse", "writes"});
  for (const ObjectReport& r : analysis.objects) {
    if (!r.referenced) {
      table.AddRow({r.name, "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow(
        {r.name, PatternClassName(r.pattern),
         r.analytic_alpha ? TextTable::Num(r.alpha, 3) : "1.000",
         r.analytic_alpha ? "analytic" : "runtime",
         FormatBytes(r.footprint_bytes),
         FormatBytes(static_cast<std::uint64_t>(r.touched_bytes)),
         r.reswept ? "re-swept x" + std::to_string(r.sweeps) : "single-pass",
         TextTable::Pct(r.write_fraction, 0)});
  }
  out += table.Render();

  out += "\nlint:\n";
  if (findings.empty()) {
    out += "  clean — no findings\n";
  }
  std::size_t errors = 0, warnings = 0;
  for (const Finding& f : findings) {
    out += "  " + FormatFinding(file, f) + "\n";
    if (f.severity == Severity::kError) ++errors;
    if (f.severity == Severity::kWarning) ++warnings;
  }
  out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
         " warning(s)\n";
  return out;
}

std::string JsonReport(const std::string& file, const Module& module,
                       const ModuleAnalysis& analysis,
                       const std::vector<Finding>& findings) {
  std::string out = "{\n  \"kernel\": \"" + JsonEscape(module.name) +
                    "\",\n  \"file\": \"" + JsonEscape(file) +
                    "\",\n  \"objects\": [\n";
  for (std::size_t i = 0; i < analysis.objects.size(); ++i) {
    const ObjectReport& r = analysis.objects[i];
    out += "    {\"name\": \"" + JsonEscape(r.name) + "\"";
    out += ", \"referenced\": ";
    out += r.referenced ? "true" : "false";
    if (r.referenced) {
      out += std::string(", \"pattern\": \"") + PatternClassName(r.pattern) +
             "\"";
      out += std::string(", \"paper_pattern\": \"") +
             trace::PatternName(r.trace_pattern) + "\"";
      out += ", \"alpha\": " + JsonNum(r.alpha);
      out += std::string(", \"alpha_source\": \"") +
             (r.analytic_alpha ? "analytic" : "runtime") + "\"";
      if (r.analytic_alpha) {
        out += ", \"profiled_alpha\": " + JsonNum(r.profiled_alpha);
      }
      out += ", \"footprint_bytes\": " +
             std::to_string(r.footprint_bytes);
      out += ", \"touched_bytes\": " + JsonNum(r.touched_bytes);
      out += ", \"write_fraction\": " + JsonNum(r.write_fraction);
      out += ", \"sweeps\": " + std::to_string(r.sweeps);
      out += std::string(", \"reuse\": \"") +
             (r.reswept ? "re-swept" : "single-pass") + "\"";
    }
    out += i + 1 < analysis.objects.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += std::string("    {\"severity\": \"") + SeverityName(f.severity) +
           "\", \"code\": \"" + JsonEscape(f.code) + "\", \"object\": \"" +
           JsonEscape(f.object) + "\", \"line\": " +
           std::to_string(f.loc.line) + ", \"message\": \"" +
           JsonEscape(f.message) + "\"";
    out += i + 1 < findings.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string DagTextReport(const std::string& file, const Module& module,
                          const TaskGraph& graph,
                          const std::vector<Finding>& findings) {
  std::string out = "task DAG for kernel " + module.name;
  if (!file.empty()) out += " (" + file + ")";
  out += ": " + std::to_string(graph.summary.tasks.size()) + " tasks, " +
         std::to_string(graph.edges.size()) + " dependence edge(s)";
  if (graph.cyclic) out += "  [CYCLIC]";
  out += "\n\n";

  TextTable tasks({"task", "after", "reads", "writes", "footprint",
                   "dram-hungry"});
  for (const TaskSummary& t : graph.summary.tasks) {
    std::string after;
    for (const TaskId p : t.after) {
      if (!after.empty()) after += ",";
      after += std::to_string(p);
    }
    tasks.AddRow({std::to_string(t.task), after.empty() ? "-" : after,
                  std::to_string(t.reads.size()),
                  std::to_string(t.writes.size()),
                  FormatBytes(t.footprint_bytes),
                  FormatBytes(t.dram_hungry_bytes)});
  }
  out += tasks.Render();

  out += "\ndependences:\n";
  if (graph.edges.empty()) out += "  none — tasks share no data\n";
  for (const DepEdge& e : graph.edges) {
    const std::string obj = e.object < module.objects.size()
                                ? module.objects[e.object].name
                                : "?";
    out += "  task " + std::to_string(e.from_task) + " -> task " +
           std::to_string(e.to_task) + "  " + DepKindName(e.kind) + " on '" +
           obj + "'  " + FormatBytes(e.overlap_bytes) +
           (e.exact ? " exact" : " may") +
           (e.declared ? ", ordered" : ", UNORDERED") + "\n";
  }

  out += "\nfindings:\n";
  if (findings.empty()) out += "  clean — no findings\n";
  std::size_t errors = 0, warnings = 0;
  for (const Finding& f : findings) {
    out += "  " + FormatFinding(file, f) + "\n";
    if (f.severity == Severity::kError) ++errors;
    if (f.severity == Severity::kWarning) ++warnings;
  }
  out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
         " warning(s)\n";
  return out;
}

std::string DagJsonReport(const std::string& file, const Module& module,
                          const TaskGraph& graph,
                          const std::vector<Finding>& findings) {
  std::string out = "{\n  \"kernel\": \"" + JsonEscape(module.name) +
                    "\",\n  \"file\": \"" + JsonEscape(file) + "\",\n";
  out += std::string("  \"cyclic\": ") + (graph.cyclic ? "true" : "false") +
         ",\n  \"tasks\": [\n";
  for (std::size_t i = 0; i < graph.summary.tasks.size(); ++i) {
    const TaskSummary& t = graph.summary.tasks[i];
    out += "    {\"task\": " + std::to_string(t.task) + ", \"after\": [";
    for (std::size_t j = 0; j < t.after.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(t.after[j]);
    }
    out += "], \"footprint_bytes\": " + std::to_string(t.footprint_bytes) +
           ", \"dram_hungry_bytes\": " +
           std::to_string(t.dram_hungry_bytes);
    out += i + 1 < graph.summary.tasks.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"edges\": [\n";
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const DepEdge& e = graph.edges[i];
    const std::string obj = e.object < module.objects.size()
                                ? module.objects[e.object].name
                                : "?";
    out += "    {\"from\": " + std::to_string(e.from_task) +
           ", \"to\": " + std::to_string(e.to_task) + ", \"kind\": \"" +
           DepKindName(e.kind) + "\", \"object\": \"" + JsonEscape(obj) +
           "\", \"overlap_bytes\": " + std::to_string(e.overlap_bytes) +
           ", \"exact\": " + (e.exact ? "true" : "false") +
           ", \"declared\": " + (e.declared ? "true" : "false");
    out += i + 1 < graph.edges.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += std::string("    {\"severity\": \"") + SeverityName(f.severity) +
           "\", \"code\": \"" + JsonEscape(f.code) + "\", \"object\": \"" +
           JsonEscape(f.object) + "\", \"line\": " +
           std::to_string(f.loc.line) + ", \"message\": \"" +
           JsonEscape(f.message) + "\"";
    out += i + 1 < findings.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string DagDotReport(const Module& module, const TaskGraph& graph) {
  std::string out = "digraph \"" + JsonEscape(module.name) + "\" {\n";
  out += "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (const TaskSummary& t : graph.summary.tasks) {
    out += "  t" + std::to_string(t.task) + " [label=\"task " +
           std::to_string(t.task) + "\\n" + FormatBytes(t.footprint_bytes) +
           " footprint\\n" + FormatBytes(t.dram_hungry_bytes) +
           " dram-hungry\"];\n";
  }
  // Declared edges that carry no data flow render dotted so
  // over-synchronization is visible at a glance.
  for (const auto& [pi, si] : graph.declared) {
    bool carries = false;
    for (const DepEdge& e : graph.edges) {
      if ((e.from == pi && e.to == si) || (e.from == si && e.to == pi)) {
        carries = true;
        break;
      }
    }
    if (carries) continue;
    out += "  t" + std::to_string(graph.summary.tasks[pi].task) + " -> t" +
           std::to_string(graph.summary.tasks[si].task) +
           " [style=dotted, label=\"after\"];\n";
  }
  for (const DepEdge& e : graph.edges) {
    const std::string obj = e.object < module.objects.size()
                                ? module.objects[e.object].name
                                : "?";
    out += "  t" + std::to_string(e.from_task) + " -> t" +
           std::to_string(e.to_task) + " [label=\"" + DepKindName(e.kind) +
           " " + JsonEscape(obj) + "\\n" + FormatBytes(e.overlap_bytes) +
           "\"";
    if (!e.declared) out += ", style=dashed, color=red";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace merch::analysis
