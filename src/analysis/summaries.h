// Abstract access-summary domain for whole-program dependence analysis.
//
// Every memory reference in a task's (flattened) loop nests is abstracted
// to a *strided-interval footprint*: the hull of bytes the reference can
// reach inside its object, derived from the subscript's stride / base
// offset / stencil offset range and the loop's trip count. Indirect and
// opaque subscripts widen conservatively to the whole object (any element
// is reachable through runtime data — the classic may-analysis fallback).
// Per task the per-reference footprints fold into read and write *region
// summaries* (one merged hull per object per direction); the dependence
// engine (analysis/depgraph.h) intersects these summaries pairwise to
// derive RAW/WAR/WAW edges with byte-overlap evidence.
//
// Soundness contract: the hull over-approximates. Every byte a concrete
// execution of the reference touches lies inside the interval, so a
// dynamically observed inter-task overlap is always covered by a
// statically inferred edge (tests/analysis_test.cc replays an access
// oracle over examples/*.kir to enforce exactly this, with zero false
// negatives). The converse does not hold: hulls of wide-strided sweeps
// have holes and widened refs cover bytes never touched, which is why
// edges carry an `exact` bit that severity decisions consult.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/ir.h"
#include "analysis/passes.h"

namespace merch::analysis {

/// Half-open byte range [lo, hi) inside one object; empty when lo >= hi.
struct ByteInterval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t size() const { return hi > lo ? hi - lo : 0; }
  bool empty() const { return hi <= lo; }
};

/// Bytes shared by two intervals (0 when disjoint).
std::uint64_t IntervalOverlap(const ByteInterval& a, const ByteInterval& b);

/// Merged footprint of every read (or every write) one task makes to one
/// object.
struct AccessSummary {
  std::size_t object = SIZE_MAX;
  bool is_write = false;
  /// Hull of reachable bytes, clipped to [0, object bytes).
  ByteInterval bytes;
  /// True when an indirect/opaque reference forced whole-object widening
  /// (the hull is a may-footprint, not a precise sweep range).
  bool widened = false;
  /// Total executions (trip count x rate) folded into this summary.
  double accesses = 0;
  /// Most cache-hostile pattern class among the folded references.
  PatternClass pattern = PatternClass::kScalar;
  /// Location of the first contributing reference (for diagnostics).
  SourceLoc loc;
};

/// Everything the dependence engine needs to know about one task.
struct TaskSummary {
  TaskId task = 0;
  std::vector<TaskId> after;  // declared predecessors (from the IR)
  /// One entry per (object, direction) actually referenced, object-sorted.
  std::vector<AccessSummary> reads;
  std::vector<AccessSummary> writes;
  /// Distinct bytes reachable across all of the task's summaries.
  std::uint64_t footprint_bytes = 0;
  /// Footprint share that wants fast-tier residency: objects this task
  /// touches with latency-bound patterns (random gathers, opaque
  /// scatters) or write-heavy access (PM write asymmetry, paper Fig. 3).
  /// The placement-interference lint sums this across concurrent tasks.
  std::uint64_t dram_hungry_bytes = 0;
  SourceLoc loc;
};

struct ModuleSummary {
  /// One entry per module task, in declaration order.
  std::vector<TaskSummary> tasks;
};

/// Fold a module's per-reference strided-interval footprints into
/// per-task read/write region summaries.
ModuleSummary Summarize(const Module& module);

/// Summary for `object` in `list`, or nullptr when the task never touches
/// it in that direction.
const AccessSummary* FindSummary(const std::vector<AccessSummary>& list,
                                 std::size_t object);

/// The strided-interval hull of one reference executed `trip_count` times
/// inside an object of `object_bytes` bytes; sets `*widened` when the
/// subscript forces whole-object widening. Exposed for tests.
ByteInterval RefInterval(const core::ArrayRef& ref, std::uint64_t trip_count,
                         std::uint64_t object_bytes, bool* widened);

}  // namespace merch::analysis
