#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>

namespace merch::analysis {
namespace {

/// Write-heavy threshold: above this write share the PM write-bandwidth
/// asymmetry (3.87x read vs 4.74x write vs DRAM, paper Section 2 / the
/// Fig. 3 phase sensitivity) makes PM residency disproportionately
/// costly.
constexpr double kWriteHeavyFraction = 0.5;

void WalkRefs(const std::vector<LoopIr>& loops,
              const std::function<void(const RefIr&)>& fn) {
  for (const LoopIr& loop : loops) {
    for (const RefIr& ref : loop.refs) fn(ref);
    WalkRefs(loop.children, fn);
  }
}

}  // namespace

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "note";
}

std::vector<Finding> Lint(const Module& module,
                          const ModuleAnalysis& analysis) {
  std::vector<Finding> out;
  auto add = [&out](Severity sev, std::string code, std::string object,
                    SourceLoc loc, std::string message) {
    out.push_back({sev, std::move(code), std::move(message),
                   std::move(object), loc});
  };

  // Per-reference checks: out-of-range objects (only possible in bridged
  // in-memory IR — the parser rejects unknown names) and opaque
  // subscripts.
  std::vector<bool> used_as_index(module.objects.size(), false);
  for (const TaskDecl& task : module.tasks) {
    WalkRefs(task.loops, [&](const RefIr& ref) {
      if (ref.object >= module.objects.size()) {
        add(Severity::kError, "invalid-object-ref", "", ref.loc,
            "task " + std::to_string(task.task) +
                " references object index " +
                (ref.object == SIZE_MAX ? std::string("<invalid>")
                                        : std::to_string(ref.object)) +
                " but only " + std::to_string(module.objects.size()) +
                " objects are declared");
        return;
      }
      const std::size_t via = ref.subscript.index_object;
      if (ref.subscript.kind == core::Subscript::Kind::kIndirect) {
        if (via >= module.objects.size()) {
          add(Severity::kError, "invalid-object-ref",
              module.objects[ref.object].name, ref.loc,
              "indirect reference to '" + module.objects[ref.object].name +
                  "' names an invalid index object");
        } else {
          used_as_index[via] = true;
        }
      }
      if (ref.subscript.kind == core::Subscript::Kind::kOpaque) {
        add(Severity::kWarning, "opaque-subscript",
            module.objects[ref.object].name, ref.loc,
            "opaque subscript on '" + module.objects[ref.object].name +
                "' in task " + std::to_string(task.task) +
                " silently degrades to runtime-refined alpha (Section 4); "
                "express the subscript as affine/stencil/indirect if its "
                "structure is known");
      }
    });
  }

  for (std::size_t i = 0; i < module.objects.size(); ++i) {
    const ObjectDecl& obj = module.objects[i];
    const ObjectReport& report = analysis.objects[i];

    if (report.referenced && !obj.registered) {
      add(Severity::kError, "unregistered-object", obj.name, obj.loc,
          "object '" + obj.name +
              "' is referenced by kernel code but never passed to "
              "LB_HM_config — the runtime cannot place or migrate it");
    }
    if (!report.referenced) {
      add(obj.registered ? Severity::kWarning : Severity::kNote,
          "dead-object", obj.name, obj.loc,
          "object '" + obj.name + "' is declared" +
              (obj.registered ? " and registered" : "") +
              " but no kernel references it" +
              (obj.registered ? " — it wastes a placement slot" : ""));
      continue;
    }
    if (report.write_fraction >= kWriteHeavyFraction &&
        report.touched_accesses > 0) {
      char frac[16];
      std::snprintf(frac, sizeof frac, "%.0f%%",
                    100.0 * report.write_fraction);
      add(Severity::kWarning, "write-heavy", obj.name, obj.loc,
          "object '" + obj.name + "' is " + frac +
              " writes; PM write bandwidth is 4.74x slower than DRAM "
              "(Fig. 3) — prioritise DRAM residency or split the "
              "write-heavy phase");
    }
    if (used_as_index[i] && obj.pattern_hint == "random" &&
        (report.pattern == PatternClass::kScalar ||
         report.pattern == PatternClass::kStream ||
         report.pattern == PatternClass::kStrided)) {
      add(Severity::kWarning, "index-misregistered", obj.name, obj.loc,
          "object '" + obj.name +
              "' is an index array (swept sequentially by the gather that "
              "uses it) but is registered as pattern=random — the alpha "
              "table would needlessly fall back to runtime refinement");
    } else if (!obj.pattern_hint.empty()) {
      const std::string derived = trace::PatternName(report.trace_pattern);
      std::string lowered = derived;
      std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lowered != obj.pattern_hint) {
        add(Severity::kWarning, "pattern-mismatch", obj.name, obj.loc,
            "object '" + obj.name + "' is registered as pattern=" +
                obj.pattern_hint + " but static analysis derives " + derived);
      }
    }
  }
  return out;
}

bool HasErrors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

std::string FormatFinding(const std::string& file, const Finding& finding) {
  std::string out = file.empty() ? "<ir>" : file;
  if (finding.loc.valid()) {
    out += ":" + std::to_string(finding.loc.line) + ":" +
           std::to_string(finding.loc.col);
  }
  out += ": ";
  out += SeverityName(finding.severity);
  return out + ": [" + finding.code + "] " + finding.message;
}

}  // namespace merch::analysis
