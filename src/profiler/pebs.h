// PEBS/IBS-style sampled access counting (paper Section 4, runtime
// refinement of alpha): hardware samples one memory access out of every
// `sample_period`, each sample carrying the data address — which lets
// Merchandiser attribute counts to data objects and tasks.
//
// The estimate of a true count T is Binomial(T, 1/P) * P; we synthesise
// that distribution directly. Overhead of this mode is negligible (<0.1%,
// Section 7.2), so the runtime keeps it always-on for refinement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace merch::profiler {

class PebsSampler {
 public:
  /// `sample_period`: one sample per this many accesses (Intel default
  /// precision territory ~1k-10k).
  PebsSampler(double sample_period, std::uint64_t seed)
      : period_(sample_period), rng_(seed) {}

  /// Sampled estimate of one true access count.
  double Estimate(double true_accesses);

  /// Element-wise estimates (e.g. per data object).
  std::vector<double> EstimateAll(std::span<const double> true_counts);

  double period() const { return period_; }

 private:
  double period_;
  Rng rng_;
};

}  // namespace merch::profiler
