#include "profiler/pebs.h"

#include <cmath>

namespace merch::profiler {

double PebsSampler::Estimate(double true_accesses) {
  if (true_accesses <= 0) return 0.0;
  const double expected_samples = true_accesses / period_;
  // Poisson(lambda) sampled count; normal approximation above 30.
  double samples;
  if (expected_samples > 30.0) {
    samples = std::max(
        0.0, rng_.NextGaussian(expected_samples, std::sqrt(expected_samples)));
  } else {
    // Knuth's algorithm for small lambda.
    const double limit = std::exp(-expected_samples);
    double prod = rng_.NextDouble();
    int k = 0;
    while (prod > limit && k < 4096) {
      ++k;
      prod *= rng_.NextDouble();
    }
    samples = k;
  }
  return samples * period_;
}

std::vector<double> PebsSampler::EstimateAll(
    std::span<const double> true_counts) {
  std::vector<double> out;
  out.reserve(true_counts.size());
  for (const double t : true_counts) out.push_back(Estimate(t));
  return out;
}

}  // namespace merch::profiler
