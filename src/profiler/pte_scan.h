// PTE-scan sampling profiler — the MemoryOptimizer profiling method.
//
// The real daemon repeatedly clears and re-reads the PTE accessed bit on a
// random sample of pages; a page "hot score" is how many scans observed the
// bit set (paper Section 2). Two properties matter and are modelled here:
//
//  1. *Saturation*: a scan observes at most "accessed since last scan", so
//     counts saturate at scans_per_interval — very hot pages are
//     indistinguishable beyond that.
//  2. *Random sampling is task-blind*: pages are drawn uniformly from the
//     address space, so a task with a larger or hotter footprint dominates
//     the sample — the root of the load-imbalance problem the paper
//     identifies (Section 1, reason 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/access_source.h"

namespace merch::profiler {

struct HotPage {
  PageId page = kInvalidPage;
  double est_accesses = 0;  // de-saturated estimate for the interval
};

class PteScanProfiler {
 public:
  struct Config {
    /// Pages sampled per interval (MemoryOptimizer bounds this to keep
    /// overhead small; paper Section 4).
    std::size_t sample_pages = 1024;
    /// Accessed-bit scan rounds per interval.
    int scans_per_interval = 12;
    /// Restrict sampling to pages currently on this tier (the daemon
    /// profiles PM to find promotion candidates). Nullopt = all pages.
    bool pm_only = true;
  };

  PteScanProfiler(Config config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  /// Sample the current interval. Returns sampled pages with nonzero
  /// estimates, sorted by estimate descending (hot first).
  std::vector<HotPage> Profile(const trace::PageAccessSource& source);

  const Config& config() const { return config_; }

 private:
  Config config_;
  Rng rng_;
};

/// Sum page estimates per owning object: how a system without task
/// semantics would attribute them, and how Merchandiser aggregates its
/// task-aware profile.
std::vector<double> AggregateByObject(const std::vector<HotPage>& pages,
                                      const trace::PageAccessSource& source,
                                      std::size_t num_objects);

/// Sum page estimates per owning task (kInvalidTask pages are dropped).
std::vector<double> AggregateByTask(const std::vector<HotPage>& pages,
                                    const trace::PageAccessSource& source,
                                    std::size_t num_tasks);

/// Eviction-ranking heat as a PTE-scan-based daemon actually sees it: the
/// accessed-bit count *saturates* (a page swept once this interval is
/// indistinguishable from a continuously hot page) and carries sampling
/// jitter. Policies pass this — not ground truth — to LFU eviction, which
/// is precisely why reactive tiering thrashes: just-swept stream pages
/// outrank persistently warm ones and pin DRAM uselessly.
double SaturatedEvictionHeat(const trace::PageAccessSource& source, PageId p,
                             int scans_per_interval, std::uint64_t salt);

/// Lower bound of SaturatedEvictionHeat over every page whose epoch access
/// count is at least `min_accesses` (the jitter term is non-negative and
/// the saturation curve is increasing). Shaved by a relative epsilon so
/// libm's exp — faithfully but not correctly rounded — can never push the
/// bound above a true heat value. Feeds MigrationEngine::MakeRoomInDram's
/// object-skipping gather; it prunes work only, never changes a decision.
double SaturatedEvictionHeatFloor(double min_accesses, int scans_per_interval);

/// Batched SaturatedEvictionHeat with a cheap screen: `out[i]` is the exact
/// scalar heat of pages[i], except pages provably hotter than `threshold`
/// (their jitter alone pushes `obj_floor` past it) get +infinity without
/// paying for the access-count probe. `obj_floor` must lower-bound the
/// observed term over the pages (SaturatedEvictionHeatFloor of the object);
/// pass threshold = +infinity to force every value exact. The surviving
/// pages' counts come from one EpochAccessesBatch call, so same-extent runs
/// share hoisted state. Exact values are bitwise those of the scalar calls.
void SaturatedEvictionHeatBatch(const trace::PageAccessSource& source,
                                std::span<const PageId> pages,
                                int scans_per_interval, std::uint64_t salt,
                                double obj_floor, double threshold,
                                std::span<double> out);

}  // namespace merch::profiler
