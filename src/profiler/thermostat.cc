#include "profiler/thermostat.h"

#include <algorithm>
#include <cmath>

namespace merch::profiler {

std::vector<HotPage> ThermostatSampler::ProfileDram(
    const trace::PageAccessSource& source) {
  std::vector<HotPage> out;
  const std::uint64_t n = source.num_pages();
  for (PageId p = 0; p < n; ++p) {
    if (source.PageTier(p) != hm::Tier::kDram) continue;
    const double true_accesses = source.EpochAccesses(p);
    // The poisoned 4 KiB sub-page sees a share of the region's accesses;
    // scaling by 512 recovers the mean with lognormal spread.
    const double est =
        true_accesses > 0
            ? true_accesses * rng_.NextLogNormal(0.0, config_.sample_sigma)
            : 0.0;
    out.push_back(HotPage{p, est});
  }
  return out;
}

std::vector<HotPage> ThermostatSampler::ColdDramPages(
    const trace::PageAccessSource& source) {
  std::vector<HotPage> all = ProfileDram(source);
  std::vector<HotPage> cold;
  for (const HotPage& h : all) {
    if (h.est_accesses < config_.cold_threshold) cold.push_back(h);
  }
  std::sort(cold.begin(), cold.end(), [](const HotPage& a, const HotPage& b) {
    return a.est_accesses < b.est_accesses;
  });
  return cold;
}

}  // namespace merch::profiler
