#include "profiler/pte_scan.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace merch::profiler {

std::vector<HotPage> PteScanProfiler::Profile(
    const trace::PageAccessSource& source) {
  const std::uint64_t total_pages = source.num_pages();
  if (total_pages == 0) return {};

  // Draw the random page sample. When restricted to PM we rejection-sample;
  // PM holds the vast majority of pages in every workload here, so the
  // retry count stays small.
  const std::size_t want = std::min<std::size_t>(config_.sample_pages,
                                                 total_pages);
  std::vector<PageId> sample;
  sample.reserve(want);
  std::size_t attempts = 0;
  const std::size_t max_attempts = want * 8 + 64;
  while (sample.size() < want && attempts < max_attempts) {
    ++attempts;
    const PageId p = rng_.NextBelow(total_pages);
    if (config_.pm_only && source.PageTier(p) != hm::Tier::kPm) continue;
    sample.push_back(p);
  }

  const int scans = std::max(1, config_.scans_per_interval);
  std::vector<HotPage> out;
  out.reserve(sample.size());
  for (const PageId p : sample) {
    const double true_accesses = source.EpochAccesses(p);
    if (true_accesses <= 0) continue;
    // Per scan round, the accessed bit is set with probability
    // 1 - exp(-a/scans) (Poisson arrivals). Observe a binomial count of
    // set-bit rounds, then invert the expectation to de-saturate.
    const double p_set = 1.0 - std::exp(-true_accesses / scans);
    int observed = 0;
    for (int s = 0; s < scans; ++s) {
      if (rng_.NextBernoulli(p_set)) ++observed;
    }
    if (observed == 0) continue;
    double est;
    if (observed >= scans) {
      // Fully saturated: the profiler only knows "at least this hot".
      est = static_cast<double>(scans) * 3.0;
    } else {
      est = -static_cast<double>(scans) *
            std::log(1.0 - static_cast<double>(observed) / scans);
    }
    out.push_back(HotPage{p, est});
  }
  std::sort(out.begin(), out.end(), [](const HotPage& a, const HotPage& b) {
    return a.est_accesses > b.est_accesses;
  });
  return out;
}

std::vector<double> AggregateByObject(const std::vector<HotPage>& pages,
                                      const trace::PageAccessSource& source,
                                      std::size_t num_objects) {
  std::vector<double> out(num_objects, 0.0);
  for (const HotPage& h : pages) {
    const ObjectId obj = source.PageObject(h.page);
    if (obj != kInvalidObject && obj < num_objects) {
      out[obj] += h.est_accesses;
    }
  }
  return out;
}

std::vector<double> AggregateByTask(const std::vector<HotPage>& pages,
                                    const trace::PageAccessSource& source,
                                    std::size_t num_tasks) {
  std::vector<double> out(num_tasks, 0.0);
  for (const HotPage& h : pages) {
    const TaskId task = source.PageTask(h.page);
    if (task != kInvalidTask && task < num_tasks) {
      out[task] += h.est_accesses;
    }
  }
  return out;
}

double SaturatedEvictionHeat(const trace::PageAccessSource& source, PageId p,
                             int scans_per_interval, std::uint64_t salt) {
  const double a = source.EpochAccesses(p);
  const double scans = std::max(1, scans_per_interval);
  // Expected set-bit rounds; saturates at `scans`. Untouched pages skip
  // the exp (exp(-0) == 1 exactly, so the value is the same +0.0).
  const double observed =
      a == 0.0 ? 0.0 : scans * (1.0 - std::exp(-a / scans));
  // Deterministic per-page jitter stands in for scan-sampling noise and
  // breaks the massive ties among saturated pages.
  std::uint64_t h = (p + 1) * 0x9E3779B97F4A7C15ull ^ salt;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  const double jitter =
      static_cast<double>(h & 0xFFFF) / 65536.0;  // [0, 1)
  return observed + jitter;
}

namespace {

/// The deterministic per-page jitter of SaturatedEvictionHeat, bit for bit.
double EvictionJitter(PageId p, std::uint64_t salt) {
  std::uint64_t h = (p + 1) * 0x9E3779B97F4A7C15ull ^ salt;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return static_cast<double>(h & 0xFFFF) / 65536.0;  // [0, 1)
}

}  // namespace

void SaturatedEvictionHeatBatch(const trace::PageAccessSource& source,
                                std::span<const PageId> pages,
                                int scans_per_interval, std::uint64_t salt,
                                double obj_floor, double threshold,
                                std::span<double> out) {
  const std::size_t n = pages.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Jitter-first screen: heat(p) = observed(p) + jitter(p), and observed
  // is bounded below by the object floor, so obj_floor + jitter(p) >
  // threshold already proves heat(p) > threshold (addition is weakly
  // monotone) without touching the access counts. The hash is a handful of
  // integer ops; the count probe walks heat profiles and sweep windows.
  // Only the surviving pages pay for the count.
  std::vector<PageId> need_pages;
  std::vector<std::uint32_t> need_idx;
  need_pages.reserve(n);
  need_idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double jitter = EvictionJitter(pages[i], salt);
    if (obj_floor + jitter > threshold) {
      out[i] = kInf;
    } else {
      out[i] = jitter;  // stashed for the transform below
      need_pages.push_back(pages[i]);
      need_idx.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<double> counts(need_pages.size());
  source.EpochAccessesBatch(need_pages, counts);
  const double scans = std::max(1, scans_per_interval);
  // Saturation is a pure function of the count, and counts within one
  // object's run are frequently identical (uniform heat spreads the static
  // total evenly), so memoize the last transform to skip repeated exps.
  double last_a = 0.0;
  double last_observed = 0.0;  // observed(0) == 0
  for (std::size_t k = 0; k < need_pages.size(); ++k) {
    const double a = counts[k];
    if (a != last_a) {
      last_a = a;
      last_observed = a == 0.0 ? 0.0 : scans * (1.0 - std::exp(-a / scans));
    }
    const std::size_t i = need_idx[k];
    out[i] = last_observed + out[i];  // out[i] held the jitter
  }
}

double SaturatedEvictionHeatFloor(double min_accesses,
                                  int scans_per_interval) {
  if (min_accesses <= 0.0) return 0.0;
  const double scans = std::max(1, scans_per_interval);
  const double observed = scans * (1.0 - std::exp(-min_accesses / scans));
  return observed * (1.0 - 1e-9);
}

}  // namespace merch::profiler
