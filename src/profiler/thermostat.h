// Thermostat-style DRAM profiling (Agarwal & Wenisch, ASPLOS'17; used by
// Merchandiser for the DRAM side — paper Section 4).
//
// Thermostat samples one 4 KiB page out of each 2 MiB huge page, poisons
// it to trap accesses, and scales the observed count by 512 to estimate
// the huge page's access rate. That makes it accurate enough to find
// *cold* DRAM pages to demote, at ~1% overhead for tens of GB — but too
// slow for the TiB-scale PM tier, which is why the PM side uses the
// bounded PTE-scan sampler instead.
//
// Our placement granularity already is the 2 MiB region, so the 4-KiB-
// subsample manifests as multiplicative estimation error on each region's
// true count (the sampled small page is not perfectly representative).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "profiler/pte_scan.h"
#include "trace/access_source.h"

namespace merch::profiler {

class ThermostatSampler {
 public:
  struct Config {
    /// Relative error (lognormal sigma) of the scaled 4K-of-2M estimate.
    double sample_sigma = 0.35;
    /// Pages with estimates below this count as cold.
    double cold_threshold = 1.0;
  };

  ThermostatSampler(Config config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  /// Estimate access counts for every DRAM-resident page. Exhaustive over
  /// DRAM (Thermostat is cheap at DRAM scale), noisy per page.
  std::vector<HotPage> ProfileDram(const trace::PageAccessSource& source);

  /// DRAM pages whose estimate falls below the cold threshold — demotion
  /// candidates, coldest first.
  std::vector<HotPage> ColdDramPages(const trace::PageAccessSource& source);

 private:
  Config config_;
  Rng rng_;
};

}  // namespace merch::profiler
