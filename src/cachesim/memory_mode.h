// Optane Memory Mode model: DRAM as a hardware-managed, direct-mapped,
// write-back cache in front of PM (paper Section 2).
//
// Under Memory Mode software cannot place pages; the DRAM cache decides
// which main-memory accesses are served fast. The paper's observation is
// that this works poorly for sparse/random workloads ("bad locality in the
// hardware-managed cache", Section 7.1 observation 2), and that it is task-
// agnostic, so it inherits the same load-imbalance pathology as software
// PGO. This model captures both effects analytically.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/pattern.h"

namespace merch::cachesim {

/// Activity summary of one object during the current interval.
struct MemoryModeObject {
  std::uint64_t bytes = 0;
  trace::AccessPattern pattern = trace::AccessPattern::kStream;
  /// Main-memory accesses to the object this interval (post-CPU-cache).
  double mm_accesses = 0;
};

struct MemoryModeResult {
  /// Per-object fraction of main-memory accesses served by the DRAM cache.
  std::vector<double> dram_fraction;
  /// Fill traffic: bytes read from PM into the DRAM cache this interval
  /// (misses), plus write-back bytes to PM. Feeds bandwidth telemetry.
  double fill_bytes_from_pm = 0;
  double writeback_bytes_to_pm = 0;
};

/// Reusable buffers for per-interval Evaluate calls: the access-density
/// ordering and the result vectors keep their capacity across intervals,
/// so a policy evaluating every interval allocates only on the first one.
struct MemoryModeScratch {
  std::vector<std::size_t> order;
  MemoryModeResult result;
};

class MemoryModeCache {
 public:
  /// `dram_bytes` is the cache capacity (all of DRAM under Memory Mode).
  explicit MemoryModeCache(std::uint64_t dram_bytes)
      : dram_bytes_(dram_bytes) {}

  /// Steady-state hit fractions for the given interval activity. The cache
  /// is shared: objects compete for capacity in proportion to their touched
  /// footprint, with per-pattern direct-mapped conflict factors.
  MemoryModeResult Evaluate(const std::vector<MemoryModeObject>& objects,
                            std::uint64_t page_bytes) const;

  /// Allocation-free variant: computes into `scratch` and returns
  /// scratch->result. Values are identical to Evaluate above.
  const MemoryModeResult& Evaluate(const std::vector<MemoryModeObject>& objects,
                                   std::uint64_t page_bytes,
                                   MemoryModeScratch* scratch) const;

 private:
  std::uint64_t dram_bytes_;
};

}  // namespace merch::cachesim
