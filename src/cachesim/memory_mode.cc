#include "cachesim/memory_mode.h"

#include <algorithm>
#include <cmath>

namespace merch::cachesim {
namespace {

/// Direct-mapped conflict / reuse-locality factor per pattern: the fraction
/// of a pattern's accesses the DRAM cache can serve even with unlimited
/// coverage. Sequential patterns prefetch and reuse cache pages well;
/// random gather/scatter thrashes a direct-mapped page cache.
double LocalityFactor(trace::AccessPattern p) {
  using trace::AccessPattern;
  switch (p) {
    case AccessPattern::kStream:
      return 0.95;
    case AccessPattern::kStrided:
      return 0.85;
    case AccessPattern::kStencil:
      return 0.92;
    case AccessPattern::kRandom:
    case AccessPattern::kUnknown:
      return 0.55;
  }
  return 0.55;
}

}  // namespace

MemoryModeResult MemoryModeCache::Evaluate(
    const std::vector<MemoryModeObject>& objects,
    std::uint64_t page_bytes) const {
  MemoryModeScratch scratch;
  return Evaluate(objects, page_bytes, &scratch);
}

const MemoryModeResult& MemoryModeCache::Evaluate(
    const std::vector<MemoryModeObject>& objects, std::uint64_t page_bytes,
    MemoryModeScratch* scratch) const {
  MemoryModeResult& result = scratch->result;
  result.dram_fraction.assign(objects.size(), 0.0);
  result.fill_bytes_from_pm = 0;
  result.writeback_bytes_to_pm = 0;

  // Hardware LRU keeps the most frequently re-touched lines resident, so
  // the cache capacity effectively fills in access-density order. Direct
  // mapping wastes part of the capacity to set conflicts (0.85 factor).
  std::vector<std::size_t>& order = scratch->order;
  order.clear();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].mm_accesses > 0 && objects[i].bytes > 0) {
      order.push_back(i);
    }
  }
  if (order.empty()) return result;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return objects[a].mm_accesses / static_cast<double>(objects[a].bytes) >
           objects[b].mm_accesses / static_cast<double>(objects[b].bytes);
  });

  // A direct-mapped cache cannot segregate objects cleanly: set conflicts
  // spread part of the capacity proportionally over everything active
  // while LRU-like retention concentrates the rest on the densest data.
  double total_active = 0;
  for (const std::size_t i : order) {
    total_active += static_cast<double>(objects[i].bytes);
  }
  const double capacity = 0.85 * static_cast<double>(dram_bytes_);
  const double proportional = std::min(1.0, capacity / total_active);
  double remaining = 0.5 * capacity;
  for (const std::size_t i : order) {
    const MemoryModeObject& o = objects[i];
    const double covered =
        std::min(remaining, 0.5 * static_cast<double>(o.bytes));
    const double ordered_cov = covered / (0.5 * static_cast<double>(o.bytes));
    remaining -= covered;
    const double coverage = 0.5 * ordered_cov + 0.5 * proportional;
    result.dram_fraction[i] =
        std::clamp(coverage * LocalityFactor(o.pattern), 0.0, 1.0);

    // The demand read of a missing line is the fill itself (the engine
    // already charges misses to PM), so the only *extra* traffic Memory
    // Mode generates is write-back of dirty evicted lines plus directory
    // metadata.
    const double misses = o.mm_accesses * (1.0 - result.dram_fraction[i]);
    result.writeback_bytes_to_pm += 0.2 * misses * 64.0;
  }
  (void)page_bytes;
  return result;
}

}  // namespace merch::cachesim
