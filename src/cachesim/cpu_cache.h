// CPU cache hierarchy model: translates program-level accesses into main-
// memory accesses.
//
// This is the simulator's ground truth for "the caching effect" that the
// paper's alpha parameter (Eq. 1) approximates from the outside. The model
// is analytic, per access pattern: it answers "what fraction of this
// kernel's program-level accesses to this object miss all CPU caches".
#pragma once

#include <cstdint>

#include "common/types.h"
#include "trace/heat.h"
#include "trace/pattern.h"

namespace merch::cachesim {

struct CpuCacheSpec {
  std::uint64_t l2_bytes = 1 * MiB;     // per core
  std::uint64_t llc_bytes = 35 * MiB;   // shared last-level cache
  std::uint32_t line_bytes = 64;

  /// Xeon Gold 6252N-like hierarchy (paper's testbed CPU: 24 cores,
  /// 35.75 MB LLC).
  static CpuCacheSpec PaperXeon() { return CpuCacheSpec{}; }
};

/// Fraction of program-level accesses that reach main memory (miss LLC).
/// `object_bytes` is the object's size; `reuse_passes` is how many times the
/// kernel sweeps the object (>= 1; temporal reuse amortises cold misses for
/// cache-resident objects). For random-pattern accesses, `heat` (when
/// given) describes the skew of the access stream: an LRU-ish LLC retains
/// the hottest lines, so a Zipf-skewed gather stream (sparse-matrix hub
/// rows, graph hubs) hits cache far more than a uniform one — and the
/// *residual* main-memory accesses are correspondingly flatter.
double MainMemoryMissRate(const trace::ObjectAccess& access,
                          std::uint64_t object_bytes,
                          const CpuCacheSpec& cache,
                          double reuse_passes = 1.0,
                          const trace::HeatProfile* heat = nullptr);

/// Fraction of program-level accesses missing the (smaller) L2 — used only
/// to synthesise the L2_LD_Miss performance event.
double L2MissRate(const trace::ObjectAccess& access, std::uint64_t object_bytes,
                  const CpuCacheSpec& cache);

}  // namespace merch::cachesim
