#include "cachesim/cpu_cache.h"

#include <algorithm>
#include <cmath>

namespace merch::cachesim {
namespace {

/// Miss rate against a cache of `cache_bytes`, before reuse amortisation.
double ColdMissRate(const trace::ObjectAccess& access,
                    std::uint64_t object_bytes, std::uint64_t cache_bytes,
                    std::uint32_t line_bytes,
                    const trace::HeatProfile* heat = nullptr) {
  using trace::AccessPattern;
  const double line = static_cast<double>(line_bytes);
  switch (access.pattern) {
    case AccessPattern::kStream: {
      // One miss per new line: element_bytes / line elements share a line.
      return std::min(1.0, static_cast<double>(access.element_bytes) / line);
    }
    case AccessPattern::kStrided: {
      const double step = static_cast<double>(access.element_bytes) *
                          std::max<std::uint32_t>(access.stride_elements, 1);
      return std::min(1.0, step / line);
    }
    case AccessPattern::kStencil: {
      // Neighborhood accesses reuse the just-fetched lines; a k-point
      // stencil still fetches each line of the array once per sweep, so the
      // per-access miss rate is the stream rate divided by the points that
      // share the line's elements. We approximate a 3..9-point neighborhood
      // with 3 program accesses per element on average.
      return std::min(
          1.0, static_cast<double>(access.element_bytes) / line / 3.0);
    }
    case AccessPattern::kRandom:
    case AccessPattern::kUnknown: {
      // An access hits iff its line is cache-resident. An LRU-ish cache
      // retains the hottest lines, so the hit fraction is the heat mass of
      // the cache_bytes hottest lines; uniform heat reduces to the
      // cache/object size ratio.
      if (object_bytes == 0) return 0.0;
      const std::uint64_t object_lines =
          std::max<std::uint64_t>(1, object_bytes / line_bytes);
      const std::uint64_t cached_lines =
          std::min<std::uint64_t>(object_lines, cache_bytes / line_bytes);
      double resident;
      if (heat != nullptr) {
        resident = heat->CumulativeFraction(cached_lines, object_lines);
      } else {
        resident = static_cast<double>(cached_lines) /
                   static_cast<double>(object_lines);
      }
      return std::clamp(1.0 - resident, 0.0, 1.0);
    }
  }
  return 1.0;
}

double AmortiseReuse(double cold_rate, std::uint64_t object_bytes,
                     std::uint64_t cache_bytes, double reuse_passes) {
  // An object that fits in cache only pays cold misses on the first pass.
  if (object_bytes <= cache_bytes && reuse_passes > 1.0) {
    return cold_rate / reuse_passes;
  }
  return cold_rate;
}

}  // namespace

double MainMemoryMissRate(const trace::ObjectAccess& access,
                          std::uint64_t object_bytes,
                          const CpuCacheSpec& cache, double reuse_passes,
                          const trace::HeatProfile* heat) {
  const double cold = ColdMissRate(access, object_bytes, cache.llc_bytes,
                                   cache.line_bytes, heat);
  return AmortiseReuse(cold, object_bytes, cache.llc_bytes,
                       std::max(1.0, reuse_passes));
}

double L2MissRate(const trace::ObjectAccess& access, std::uint64_t object_bytes,
                  const CpuCacheSpec& cache) {
  return ColdMissRate(access, object_bytes, cache.l2_bytes, cache.line_bytes);
}

}  // namespace merch::cachesim
