// Merchandiser-as-a-service: a long-lived, concurrent placement-query
// engine on top of the simulator.
//
// Every Submit() turns a PlacementRequest into (at most) one simulation
// job on a fixed ThreadPool. Three layers keep repeated and concurrent
// traffic cheap:
//
//   1. ResultCache — completed canonical requests are served back without
//      re-simulation (placement queries are deterministic; see
//      service/result_cache.h).
//   2. In-flight coalescing — identical requests submitted while the first
//      is still queued or running share one job and one future.
//   3. Trained-system sharing — 'merch' requests reuse one immutable
//      MerchandiserSystem per training budget ("the construction of f
//      happens only once", paper Section 5.1); training is serialized and
//      every simulation job only reads the trained function.
//
// Each simulation owns its Engine/PageTable/Rng state, so jobs are
// embarrassingly parallel and results are bit-identical regardless of the
// pool width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/registry.h"
#include "core/merchandiser.h"
#include "service/request.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace merch::service {

/// Point-in-time counters (cache counters come from the ResultCache).
struct ServiceStats {
  std::uint64_t submitted = 0;   // Submit()/SubmitFused() requests
  std::uint64_t coalesced = 0;   // joined an identical in-flight request
  std::uint64_t simulated = 0;   // jobs that actually ran an Engine
  std::uint64_t failed = 0;      // jobs whose result carries an error
  /// SubmitFused groups that shared one app build across >= 2 members.
  std::uint64_t fused_groups = 0;
  /// SubmitIncremental ladders that delta-simulated >= 2 members on a
  /// shared engine (see sim/incremental.h).
  std::uint64_t incremental_groups = 0;
  /// Shared greedy warm-start cache (see GreedyResultCache): instance
  /// decisions replayed from / inserted into the cross-job memo.
  std::uint64_t greedy_hits = 0;
  std::uint64_t greedy_misses = 0;
  CacheStats cache;
  std::size_t threads = 0;
};

class PlacementService {
 public:
  struct Config {
    std::size_t threads = 1;
    std::size_t cache_capacity = 128;
    std::size_t queue_capacity = 1024;
  };

  /// How a Submit() was satisfied, plus the (shared) result future.
  struct Ticket {
    std::shared_future<PlacementResult> future;
    bool cache_hit = false;   // served from the result cache, no job
    bool coalesced = false;   // joined an existing in-flight job
  };

  explicit PlacementService(Config config);

  /// Drains in-flight jobs (ThreadPool::Shutdown semantics).
  ~PlacementService();

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  /// Canonicalizes and enqueues `request`. Invalid requests yield a ready
  /// future whose result carries the error — Submit itself never throws.
  Ticket Submit(PlacementRequest request);

  /// Batched sweep submission: like one Submit per request (same
  /// canonicalization, cache, and coalescing, ticket i answers request i),
  /// but cache-missing requests that share an application instance — same
  /// (app, scale, work, seed) — are fused into ONE pool job that builds
  /// the app and runs its static analysis once, then runs each member's
  /// engine against the shared instance. Results are bit-identical to
  /// individual Submit()s; only the redundant per-member app construction
  /// and lint passes are elided. Sweep drivers (merchctl sweep --fused)
  /// use this to amortize setup across the policy axis of a sweep.
  std::vector<Ticket> SubmitFused(std::vector<PlacementRequest> requests);

  /// SubmitFused plus cross-point delta simulation: each fused group's
  /// members run through sim::RunIncrementalSweep, which drives ONE engine
  /// per ladder and forks a member onto a checkpoint-restored engine only
  /// when its policy's decisions diverge from the shared trajectory.
  /// Results are byte-identical to SubmitFused and to individual
  /// Submit()s. The MERCH_CKPT environment toggle ("0"/"off"/"false")
  /// disables the delta path and falls back to SubmitFused exactly.
  std::vector<Ticket> SubmitIncremental(std::vector<PlacementRequest> requests);

  /// Completion callback: invoked exactly once per SubmitAsync, with the
  /// finished result. Runs on the worker thread that completed the job —
  /// or inline on the caller's thread for cache hits, invalid requests,
  /// and shutdown rejections — so it must be cheap and non-blocking.
  using Callback = std::function<void(const PlacementResult&)>;

  /// Submit + continuation, for callers that must not block on a future
  /// (the net reactor). Coalesces with in-flight identical requests like
  /// Submit(); every coalesced waiter's callback fires when the shared job
  /// completes.
  Ticket SubmitAsync(PlacementRequest request, Callback done);

  /// Cache-only probe: canonicalizes and returns the cached result if
  /// present, without enqueueing anything. Invalid requests return
  /// nullopt. Lets admission control serve warm keys even while shedding
  /// simulation load.
  std::optional<PlacementResult> Peek(PlacementRequest request);

  /// Jobs accepted by the pool but not yet started (shedding signal).
  std::size_t QueueDepth() const;

  /// The result cache (snapshot save/load; see ResultCache::Serialize).
  ResultCache& result_cache() { return cache_; }
  const ResultCache& result_cache() const { return cache_; }

  ServiceStats Stats() const;

  /// Stop accepting work and finish everything accepted so far.
  void Shutdown();

  // --- request plumbing shared with merchctl's direct-run path ---

  /// The evaluation machine with both tier capacities scaled by
  /// `req.scale` (capacity pressure tracks the footprint).
  static sim::MachineSpec RequestMachine(const PlacementRequest& req);

  /// Simulation knobs for `req` (epoch, placement granularity, seed).
  static sim::SimConfig RequestSimConfig(const PlacementRequest& req);

  /// Synchronously run one canonicalized request. `system` may be null for
  /// policies other than 'merch'. Never throws; errors land in the result.
  /// `greedy_cache` (optional, must outlive the call) lets 'merch' runs
  /// warm-start Algorithm 1 from identical decisions made by other jobs
  /// sharing the cache — bit-identical either way, since the cache only
  /// replays exact-input hits.
  static PlacementResult RunRequest(const PlacementRequest& req,
                                    const core::MerchandiserSystem* system,
                                    core::GreedyResultCache* greedy_cache =
                                        nullptr);

  /// The policy-independent half of RunRequest: app construction, the
  /// static-analysis gates, machine and sim config. Shareable across every
  /// request with the same (app, scale, work, seed); a build or lint
  /// failure lands in `error` and fails each member run identically.
  struct PreparedApp {
    apps::AppBundle bundle;
    sim::MachineSpec machine;
    sim::SimConfig cfg;
    std::string error;  // empty = usable
  };
  static PreparedApp PrepareApp(const PlacementRequest& req);

  /// The per-policy half of RunRequest against an already-prepared app.
  /// RunRequest(req, ...) == RunPrepared(PrepareApp(req), req, ...) bit for
  /// bit; fused sweeps call PrepareApp once per group.
  static PlacementResult RunPrepared(const PreparedApp& prepared,
                                     const PlacementRequest& req,
                                     const core::MerchandiserSystem* system,
                                     core::GreedyResultCache* greedy_cache =
                                         nullptr);

 private:
  /// The shared immutable trained system for `train_regions`, training it
  /// on first use. Training is serialized across jobs.
  std::shared_ptr<const core::MerchandiserSystem> TrainedSystem(
      std::size_t train_regions);

  void RunJob(const std::string& key, const PlacementRequest& req,
              std::shared_ptr<std::promise<PlacementResult>> promise);

  /// One cache-missing member of a SubmitFused group.
  struct FusedMember {
    std::string key;
    PlacementRequest req;
    std::shared_ptr<std::promise<PlacementResult>> promise;
  };

  /// Pool job for one fused group: PrepareApp once, then run and finish
  /// every member against the shared instance.
  void RunFusedJob(std::vector<FusedMember> members);

  /// Pool job for one incremental group: PrepareApp once, then delta-
  /// simulate every member's engine run through the fork-tree sweep
  /// driver. Bit-identical to RunFusedJob.
  void RunIncrementalJob(std::vector<FusedMember> members);

  /// Shared front-end of SubmitFused/SubmitIncremental: canonicalize,
  /// serve cache hits, coalesce, group the rest by application instance,
  /// and dispatch one pool job per group.
  std::vector<Ticket> SubmitGrouped(std::vector<PlacementRequest> requests,
                                    bool incremental);

  /// Publish one finished job result: cache insert, in-flight retirement,
  /// stats, promise resolution, queued callbacks. Shared by RunJob and
  /// RunFusedJob.
  void FinishJob(const std::string& key, PlacementResult result,
                 const std::shared_ptr<std::promise<PlacementResult>>& promise);

  /// One in-flight simulation: the shared future every coalesced Submit()
  /// returned, plus the continuations attached by SubmitAsync().
  struct InFlight {
    std::shared_future<PlacementResult> future;
    std::vector<Callback> callbacks;
  };

  Ticket SubmitInternal(PlacementRequest request, Callback done);

  Config config_;
  ResultCache cache_;

  mutable std::mutex mu_;  // guards inflight_ + counters
  std::unordered_map<std::string, InFlight> inflight_;
  std::uint64_t submitted_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t simulated_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t fused_groups_ = 0;
  std::uint64_t incremental_groups_ = 0;

  std::mutex train_mu_;  // serializes training; guards systems_
  std::map<std::size_t, std::shared_ptr<const core::MerchandiserSystem>>
      systems_;

  /// Shared across jobs: parallel sweep points that reach the same
  /// Algorithm 1 inputs replay each other's results (thread-safe; keyed
  /// bitwise, so sharing never changes a result). Declared after systems_
  /// — fingerprints reference correlation functions owned there.
  core::GreedyResultCache greedy_cache_;

  ThreadPool pool_;  // last member: jobs may touch everything above
};

}  // namespace merch::service
