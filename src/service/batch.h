// Batch front-end helpers shared by `merchctl sweep` and `merchd`:
// parsing newline-delimited request files and draining a request list
// through a PlacementService with wall-clock accounting.
//
// Request-file grammar (one request per line):
//
//   app=SpGEMM policy=merch scale=0.1 work=0.5 train_regions=64 seed=7
//
// Tokens are space-separated key=value pairs in any order; omitted keys
// keep PlacementRequest defaults. Blank lines and lines starting with '#'
// are skipped.
#pragma once

#include <string>
#include <vector>

#include "service/placement_service.h"
#include "service/request.h"

namespace merch::service {

/// Parse one request line. Returns:
///   kRequest — `*out` holds the parsed request,
///   kSkip    — blank or comment line,
///   kError   — malformed; `*error` names the offending token.
enum class ParseStatus { kRequest, kSkip, kError };
ParseStatus ParseRequestLine(const std::string& line, PlacementRequest* out,
                             std::string* error);

/// Read a whole request file. Returns false (with `*error` set, naming the
/// line number) on the first malformed line or an unreadable file.
bool LoadRequestFile(const std::string& path,
                     std::vector<PlacementRequest>* out, std::string* error);

/// Outcome of pushing one batch through a service.
struct BatchReport {
  std::vector<PlacementResult> results;  // one per request, input order
  std::vector<bool> cache_hits;          // ticket-level: served from cache
  double wall_seconds = 0;
  double jobs_per_second = 0;            // requests / wall_seconds
};

/// How RunBatch pushes requests into the service. Results are
/// bit-identical across all three; the modes only change how much work
/// is shared between requests.
enum class BatchMode {
  kPerRequest,   // one Submit() per request
  kFused,        // SubmitFused: one app build + analysis per group
  kIncremental,  // SubmitIncremental: fused + cross-point delta simulation
};

/// Submit every request, wait for all futures, measure wall-clock.
BatchReport RunBatch(PlacementService& service,
                     const std::vector<PlacementRequest>& requests,
                     BatchMode mode);

/// Back-compat shim: `fused` picks kFused over kPerRequest.
BatchReport RunBatch(PlacementService& service,
                     const std::vector<PlacementRequest>& requests,
                     bool fused = false);

}  // namespace merch::service
