#include "service/serialization.h"

#include <cstring>

namespace merch::service {

namespace {

std::uint64_t F64Bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double BitsF64(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

void WireWriter::U16(std::uint16_t v) {
  U8(static_cast<std::uint8_t>(v));
  U8(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::U32(std::uint32_t v) {
  U16(static_cast<std::uint16_t>(v));
  U16(static_cast<std::uint16_t>(v >> 16));
}

void WireWriter::U64(std::uint64_t v) {
  U32(static_cast<std::uint32_t>(v));
  U32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::F64(double v) { U64(F64Bits(v)); }

void WireWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

bool WireReader::Take(std::size_t n, const unsigned char** out) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = p_ + pos_;
  pos_ += n;
  return true;
}

bool WireReader::U8(std::uint8_t* v) {
  const unsigned char* b;
  if (!Take(1, &b)) return false;
  *v = b[0];
  return true;
}

bool WireReader::U16(std::uint16_t* v) {
  const unsigned char* b;
  if (!Take(2, &b)) return false;
  *v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  return true;
}

bool WireReader::U32(std::uint32_t* v) {
  const unsigned char* b;
  if (!Take(4, &b)) return false;
  *v = static_cast<std::uint32_t>(b[0]) |
       (static_cast<std::uint32_t>(b[1]) << 8) |
       (static_cast<std::uint32_t>(b[2]) << 16) |
       (static_cast<std::uint32_t>(b[3]) << 24);
  return true;
}

bool WireReader::U64(std::uint64_t* v) {
  std::uint32_t lo, hi;
  if (!U32(&lo) || !U32(&hi)) return false;
  *v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
  return true;
}

bool WireReader::F64(double* v) {
  std::uint64_t bits;
  if (!U64(&bits)) return false;
  *v = BitsF64(bits);
  return true;
}

bool WireReader::Str(std::string* s, std::size_t max_len) {
  std::uint32_t len;
  if (!U32(&len)) return false;
  if (len > max_len || len > size_ - pos_) {
    ok_ = false;
    return false;
  }
  const unsigned char* b;
  if (!Take(len, &b)) return false;
  s->assign(reinterpret_cast<const char*>(b), len);
  return true;
}

void EncodeRequest(const PlacementRequest& req, WireWriter* w) {
  w->Str(req.app);
  w->Str(req.policy);
  w->F64(req.scale);
  w->F64(req.work);
  w->U64(req.train_regions);
  w->U64(req.seed);
}

bool DecodeRequest(WireReader* r, PlacementRequest* req) {
  std::uint64_t train_regions = 0;
  r->Str(&req->app);
  r->Str(&req->policy);
  r->F64(&req->scale);
  r->F64(&req->work);
  r->U64(&train_regions);
  r->U64(&req->seed);
  req->train_regions = static_cast<std::size_t>(train_regions);
  return r->ok();
}

void EncodeResult(const PlacementResult& result, WireWriter* w) {
  EncodeRequest(result.request, w);
  w->Str(result.error);
  w->F64(result.makespan_seconds);
  w->F64(result.task_cov);
  w->U64(result.migrated_bytes);
  w->U64(result.regions);
  w->U32(static_cast<std::uint32_t>(result.placements.size()));
  for (const ObjectPlacement& p : result.placements) {
    w->Str(p.object);
    w->U64(p.bytes);
    w->F64(p.dram_fraction);
  }
}

bool DecodeResult(WireReader* r, PlacementResult* result) {
  std::uint64_t regions = 0;
  std::uint32_t n_placements = 0;
  if (!DecodeRequest(r, &result->request)) return false;
  r->Str(&result->error);
  r->F64(&result->makespan_seconds);
  r->F64(&result->task_cov);
  r->U64(&result->migrated_bytes);
  r->U64(&regions);
  r->U32(&n_placements);
  if (!r->ok()) return false;
  result->regions = static_cast<std::size_t>(regions);
  // Each placement costs at least 20 encoded bytes; a count the remaining
  // input cannot possibly hold is a hostile length prefix, not data.
  if (n_placements > r->remaining() / 20) {
    r->MarkBad();
    return false;
  }
  result->placements.clear();
  result->placements.reserve(n_placements);
  for (std::uint32_t i = 0; i < n_placements; ++i) {
    ObjectPlacement p;
    r->Str(&p.object);
    r->U64(&p.bytes);
    r->F64(&p.dram_fraction);
    if (!r->ok()) return false;
    result->placements.push_back(std::move(p));
  }
  return r->ok();
}

namespace {

bool SameBits(double a, double b) {
  return F64Bits(a) == F64Bits(b);
}

bool SameRequest(const PlacementRequest& a, const PlacementRequest& b) {
  return a.app == b.app && a.policy == b.policy && SameBits(a.scale, b.scale) &&
         SameBits(a.work, b.work) && a.train_regions == b.train_regions &&
         a.seed == b.seed;
}

}  // namespace

bool BitIdentical(const PlacementResult& a, const PlacementResult& b) {
  if (!SameRequest(a.request, b.request) || a.error != b.error ||
      !SameBits(a.makespan_seconds, b.makespan_seconds) ||
      !SameBits(a.task_cov, b.task_cov) ||
      a.migrated_bytes != b.migrated_bytes || a.regions != b.regions ||
      a.placements.size() != b.placements.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    const ObjectPlacement& pa = a.placements[i];
    const ObjectPlacement& pb = b.placements[i];
    if (pa.object != pb.object || pa.bytes != pb.bytes ||
        !SameBits(pa.dram_fraction, pb.dram_fraction)) {
      return false;
    }
  }
  return true;
}

}  // namespace merch::service
