// Binary serialization for the service types, shared by the src/net wire
// protocol and the ResultCache snapshot format.
//
// Encoding rules (all multi-byte integers little-endian, independent of
// host order):
//   u8/u16/u32/u64  fixed-width unsigned integers
//   f64             IEEE-754 bit pattern carried as u64 (bit-exact round
//                   trip, including NaN payloads and signed zeros — the
//                   determinism contract is bitwise, so the codec is too)
//   str             u32 byte length + raw bytes (no terminator)
//
// WireReader is a non-throwing cursor: any underflow or limit violation
// latches ok() == false and every later read returns false, so decoders
// can run a straight-line field list and check once at the end. Feeding a
// reader truncated or hostile bytes is safe by construction — it never
// reads outside [data, data+size).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/request.h"

namespace merch::service {

class WireWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void F64(double v);
  /// Strings longer than kMaxString are a caller bug; Str() truncates
  /// never — it asserts via the length check in the matching reader.
  void Str(const std::string& s);

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class WireReader {
 public:
  WireReader(const void* data, std::size_t size)
      : p_(static_cast<const unsigned char*>(data)), size_(size) {}
  explicit WireReader(const std::string& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  bool U8(std::uint8_t* v);
  bool U16(std::uint16_t* v);
  bool U32(std::uint32_t* v);
  bool U64(std::uint64_t* v);
  bool F64(double* v);
  /// Rejects lengths beyond `max_len` (and beyond the remaining input) so
  /// a hostile length prefix can never drive a huge allocation.
  bool Str(std::string* s, std::size_t max_len = kMaxString);

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// Latch a decode failure found by semantic checks outside the reader.
  void MarkBad() { ok_ = false; }

  /// Default per-string cap: object names and error messages are short.
  static constexpr std::size_t kMaxString = 1 << 20;

 private:
  bool Take(std::size_t n, const unsigned char** out);

  const unsigned char* p_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- service-type codecs -------------------------------------------------

void EncodeRequest(const PlacementRequest& req, WireWriter* w);
/// Returns false (without touching partial fields' validity) on truncated
/// or oversized input; semantic validation stays CanonicalizeRequest's job.
bool DecodeRequest(WireReader* r, PlacementRequest* req);

void EncodeResult(const PlacementResult& result, WireWriter* w);
bool DecodeResult(WireReader* r, PlacementResult* result);

/// Bitwise equality of two results (doubles compared by bit pattern, so
/// NaN == NaN and +0 != -0). This is the "networked results are
/// bit-identical to in-process results" acceptance predicate.
bool BitIdentical(const PlacementResult& a, const PlacementResult& b);

}  // namespace merch::service
