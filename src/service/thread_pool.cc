#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace merch::service {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queue_capacity_(std::max<std::size_t>(1, queue_capacity)) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return shutdown_ || queue_.size() < queue_capacity_;
    });
    if (shutdown_) return false;
    queue_.push_back(std::move(job));
    ++accepted_;
    MERCH_METRIC_GAUGE_SET("merch_pool_queue_depth", queue_.size());
  }
  MERCH_METRIC_COUNT("merch_pool_jobs_accepted_total", 1);
  MERCH_TRACE_INSTANT(obs::Category::kPool, "pool.enqueue");
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= queue_capacity_) return false;
    queue_.push_back(std::move(job));
    ++accepted_;
    MERCH_METRIC_GAUGE_SET("merch_pool_queue_depth", queue_.size());
  }
  MERCH_METRIC_COUNT("merch_pool_jobs_accepted_total", 1);
  MERCH_TRACE_INSTANT(obs::Category::kPool, "pool.enqueue");
  not_empty_.notify_one();
  return true;
}

std::size_t ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Shutdown() {
  bool join_here = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    if (!joining_) joining_ = join_here = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (!join_here) return;  // another caller owns the joins
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::size_t ThreadPool::jobs_executed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return executed_;
}

std::size_t ThreadPool::jobs_accepted() const {
  std::unique_lock<std::mutex> lock(mu_);
  return accepted_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      MERCH_METRIC_GAUGE_SET("merch_pool_queue_depth", queue_.size());
    }
    not_full_.notify_one();
    MERCH_TRACE_INSTANT(obs::Category::kPool, "pool.dequeue");
    MERCH_METRIC_GAUGE_ADD("merch_pool_active", 1);
    job();
    MERCH_METRIC_GAUGE_ADD("merch_pool_active", -1);
    MERCH_METRIC_COUNT("merch_pool_jobs_executed_total", 1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++executed_;
    }
  }
}

}  // namespace merch::service
