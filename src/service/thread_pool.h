// Fixed-size worker pool with a bounded job queue.
//
// The service layer runs placement simulations as jobs: each job owns its
// Engine/PageTable state, so jobs never share mutable simulator state and
// the pool needs no work stealing — a bounded MPMC queue in front of N
// workers is sufficient and keeps shutdown semantics simple. Submit()
// blocks when the queue is full (back-pressure toward batch drivers
// instead of unbounded memory growth) and Shutdown() drains every job that
// was accepted before joining the workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace merch::service {

class ThreadPool {
 public:
  /// `threads` is clamped to at least 1. `queue_capacity` bounds the number
  /// of accepted-but-not-started jobs.
  explicit ThreadPool(std::size_t threads, std::size_t queue_capacity = 256);

  /// Joins after draining (equivalent to Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one job. Blocks while the queue is at capacity. Returns false
  /// (and drops the job) if the pool is shutting down.
  bool Submit(std::function<void()> job);

  /// Non-blocking Submit: returns false immediately when the queue is at
  /// capacity or the pool is shutting down. This is the admission-control
  /// primitive — callers that must not block (the net reactor, the shard
  /// router's accept path) shed load instead of queueing unboundedly.
  bool TrySubmit(std::function<void()> job);

  /// Jobs accepted but not yet started (point-in-time).
  std::size_t queue_depth() const;

  /// Stop accepting new jobs, run everything already accepted, join all
  /// workers. Idempotent; safe to call concurrently with Submit().
  void Shutdown();

  std::size_t thread_count() const { return workers_.size(); }

  /// Jobs fully executed so far (monotonic).
  std::size_t jobs_executed() const;

  /// Jobs accepted by Submit() so far (monotonic).
  std::size_t jobs_accepted() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::size_t queue_capacity_;
  bool shutdown_ = false;
  bool joining_ = false;
  std::size_t executed_ = 0;
  std::size_t accepted_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace merch::service
