// LRU cache of completed placement results, keyed by the canonicalized
// request string (CanonicalKey in service/request.h).
//
// Placement queries are deterministic — the same canonical request always
// produces the same result — so the cache never needs invalidation, only
// capacity-driven LRU eviction. All operations are thread-safe; hit, miss
// and eviction counters feed the ServiceStats snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "service/request.h"

namespace merch::service {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity);

  /// Copy-out lookup (callers never hold references across the lock);
  /// bumps the entry to most-recently-used on hit.
  std::optional<PlacementResult> Get(const std::string& key);

  /// Insert or overwrite; evicts the least-recently-used entry when full.
  void Put(const std::string& key, PlacementResult value);

  bool Contains(const std::string& key) const;
  void Clear();
  CacheStats Stats() const;

  /// Snapshot format: "MCSN" magic, format version, entry count, then
  /// (key, result) records least-recently-used first, so replaying them
  /// through Put() reconstructs the recency order exactly. Snapshots let a
  /// warm cache survive restarts and be pre-shared across shard workers —
  /// sound because results are deterministic functions of their canonical
  /// key (no invalidation story needed).
  std::string Serialize() const;

  /// Merge a snapshot into the cache via Put() (capacity-driven eviction
  /// still applies, so loading into a smaller cache keeps the most
  /// recently used tail). Rejects corrupt, truncated, or
  /// version-mismatched snapshots with `*error` set and the cache
  /// untouched — a bad file must never crash or half-load.
  bool Deserialize(const std::string& bytes, std::string* error);

 private:
  using Entry = std::pair<std::string, PlacementResult>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace merch::service
