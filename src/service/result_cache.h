// LRU cache of completed placement results, keyed by the canonicalized
// request string (CanonicalKey in service/request.h).
//
// Placement queries are deterministic — the same canonical request always
// produces the same result — so the cache never needs invalidation, only
// capacity-driven LRU eviction. All operations are thread-safe; hit, miss
// and eviction counters feed the ServiceStats snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "service/request.h"

namespace merch::service {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity);

  /// Copy-out lookup (callers never hold references across the lock);
  /// bumps the entry to most-recently-used on hit.
  std::optional<PlacementResult> Get(const std::string& key);

  /// Insert or overwrite; evicts the least-recently-used entry when full.
  void Put(const std::string& key, PlacementResult value);

  bool Contains(const std::string& key) const;
  void Clear();
  CacheStats Stats() const;

 private:
  using Entry = std::pair<std::string, PlacementResult>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace merch::service
