#include "service/batch.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace merch::service {

namespace {

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

bool ParseU64(const std::string& text, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

}  // namespace

ParseStatus ParseRequestLine(const std::string& line, PlacementRequest* out,
                             std::string* error) {
  std::istringstream in(line);
  std::string token;
  bool any = false;
  PlacementRequest req;
  while (in >> token) {
    if (token[0] == '#') break;  // trailing comment
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "expected key=value, got '" + token + "'";
      return ParseStatus::kError;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    bool ok = true;
    if (key == "app") {
      req.app = value;
    } else if (key == "policy") {
      req.policy = value;
    } else if (key == "scale") {
      ok = ParseDouble(value, &req.scale);
    } else if (key == "work") {
      ok = ParseDouble(value, &req.work);
    } else if (key == "train_regions") {
      std::uint64_t v = 0;
      ok = ParseU64(value, &v);
      req.train_regions = static_cast<std::size_t>(v);
    } else if (key == "seed") {
      ok = ParseU64(value, &req.seed);
    } else {
      *error = "unknown key '" + key + "'";
      return ParseStatus::kError;
    }
    if (!ok) {
      *error = "bad value for '" + key + "': '" + value + "'";
      return ParseStatus::kError;
    }
    any = true;
  }
  if (!any) return ParseStatus::kSkip;
  *out = std::move(req);
  return ParseStatus::kRequest;
}

bool LoadRequestFile(const std::string& path,
                     std::vector<PlacementRequest>* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open request file '" + path + "'";
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    PlacementRequest req;
    std::string err;
    switch (ParseRequestLine(line, &req, &err)) {
      case ParseStatus::kSkip:
        break;
      case ParseStatus::kRequest:
        out->push_back(std::move(req));
        break;
      case ParseStatus::kError:
        *error = path + ":" + std::to_string(lineno) + ": " + err;
        return false;
    }
  }
  return true;
}

BatchReport RunBatch(PlacementService& service,
                     const std::vector<PlacementRequest>& requests,
                     BatchMode mode) {
  BatchReport report;
  report.results.reserve(requests.size());
  report.cache_hits.reserve(requests.size());

  const auto start = std::chrono::steady_clock::now();
  std::vector<PlacementService::Ticket> tickets;
  tickets.reserve(requests.size());
  switch (mode) {
    case BatchMode::kFused:
      tickets = service.SubmitFused(requests);
      break;
    case BatchMode::kIncremental:
      tickets = service.SubmitIncremental(requests);
      break;
    case BatchMode::kPerRequest:
      for (const auto& req : requests) {
        tickets.push_back(service.Submit(req));
      }
      break;
  }
  for (const auto& t : tickets) {
    report.results.push_back(t.future.get());
    report.cache_hits.push_back(t.cache_hit);
  }
  const auto end = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (report.wall_seconds > 0) {
    report.jobs_per_second =
        static_cast<double>(requests.size()) / report.wall_seconds;
  }
  return report;
}

BatchReport RunBatch(PlacementService& service,
                     const std::vector<PlacementRequest>& requests,
                     bool fused) {
  return RunBatch(service, requests,
                  fused ? BatchMode::kFused : BatchMode::kPerRequest);
}

}  // namespace merch::service
