#include "service/result_cache.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/serialization.h"

namespace merch::service {

namespace {

// Snapshot magic + format version. Bump the version on any layout change:
// old readers then reject new snapshots (and vice versa) instead of
// misinterpreting bytes.
constexpr char kSnapshotMagic[4] = {'M', 'C', 'S', 'N'};
constexpr std::uint16_t kSnapshotVersion = 1;

}  // namespace

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

std::optional<PlacementResult> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    MERCH_METRIC_COUNT("merch_cache_misses_total", 1);
    MERCH_TRACE_INSTANT_ARG(obs::Category::kCache, "cache.lookup", "hit", 0);
    return std::nullopt;
  }
  ++hits_;
  MERCH_METRIC_COUNT("merch_cache_hits_total", 1);
  MERCH_TRACE_INSTANT_ARG(obs::Category::kCache, "cache.lookup", "hit", 1);
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

void ResultCache::Put(const std::string& key, PlacementResult value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
    MERCH_METRIC_COUNT("merch_cache_evictions_total", 1);
    MERCH_TRACE_INSTANT(obs::Category::kCache, "cache.evict");
  }
  order_.emplace_front(key, std::move(value));
  index_[key] = order_.begin();
}

bool ResultCache::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  index_.clear();
}

CacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CacheStats{hits_, misses_, evictions_, index_.size(), capacity_};
}

std::string ResultCache::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  WireWriter w;
  for (char c : kSnapshotMagic) w.U8(static_cast<std::uint8_t>(c));
  w.U16(kSnapshotVersion);
  w.U32(static_cast<std::uint32_t>(order_.size()));
  // Least-recently-used first: replaying through Put() leaves the
  // most-recently-used entry at the front again.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    w.Str(it->first);
    EncodeResult(it->second, &w);
  }
  return w.Take();
}

bool ResultCache::Deserialize(const std::string& bytes, std::string* error) {
  WireReader r(bytes);
  std::uint8_t magic[4];
  for (std::uint8_t& m : magic) r.U8(&m);
  std::uint16_t version = 0;
  std::uint32_t count = 0;
  r.U16(&version);
  r.U32(&count);
  if (!r.ok()) {
    if (error != nullptr) *error = "cache snapshot: truncated header";
    return false;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (static_cast<char>(magic[i]) != kSnapshotMagic[i]) {
      if (error != nullptr) *error = "cache snapshot: bad magic";
      return false;
    }
  }
  if (version != kSnapshotVersion) {
    if (error != nullptr) {
      *error = "cache snapshot: unsupported version " +
               std::to_string(version) + " (expected " +
               std::to_string(kSnapshotVersion) + ")";
    }
    return false;
  }
  // Decode everything before touching the cache: a snapshot that turns out
  // corrupt halfway through must not half-load.
  std::vector<std::pair<std::string, PlacementResult>> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::pair<std::string, PlacementResult> entry;
    if (!r.Str(&entry.first) || !DecodeResult(&r, &entry.second)) {
      if (error != nullptr) {
        *error = "cache snapshot: corrupt entry " + std::to_string(i) +
                 " of " + std::to_string(count);
      }
      return false;
    }
    entries.push_back(std::move(entry));
  }
  if (r.remaining() != 0) {
    if (error != nullptr) *error = "cache snapshot: trailing bytes";
    return false;
  }
  for (auto& [key, result] : entries) Put(key, std::move(result));
  return true;
}

}  // namespace merch::service
