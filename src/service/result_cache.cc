#include "service/result_cache.h"

namespace merch::service {

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

std::optional<PlacementResult> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

void ResultCache::Put(const std::string& key, PlacementResult value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
  }
  order_.emplace_front(key, std::move(value));
  index_[key] = order_.begin();
}

bool ResultCache::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  index_.clear();
}

CacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CacheStats{hits_, misses_, evictions_, index_.size(), capacity_};
}

}  // namespace merch::service
