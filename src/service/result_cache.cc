#include "service/result_cache.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace merch::service {

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

std::optional<PlacementResult> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    MERCH_METRIC_COUNT("merch_cache_misses_total", 1);
    MERCH_TRACE_INSTANT_ARG(obs::Category::kCache, "cache.lookup", "hit", 0);
    return std::nullopt;
  }
  ++hits_;
  MERCH_METRIC_COUNT("merch_cache_hits_total", 1);
  MERCH_TRACE_INSTANT_ARG(obs::Category::kCache, "cache.lookup", "hit", 1);
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

void ResultCache::Put(const std::string& key, PlacementResult value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
    MERCH_METRIC_COUNT("merch_cache_evictions_total", 1);
    MERCH_TRACE_INSTANT(obs::Category::kCache, "cache.evict");
  }
  order_.emplace_front(key, std::move(value));
  index_[key] = order_.begin();
}

bool ResultCache::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  index_.clear();
}

CacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CacheStats{hits_, misses_, evictions_, index_.size(), capacity_};
}

}  // namespace merch::service
