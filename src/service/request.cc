#include "service/request.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "apps/registry.h"

namespace merch::service {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string Join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

const std::vector<std::string>& PolicyNames() {
  static const std::vector<std::string> kNames = {"pm",    "mm",     "mo",
                                                  "merch", "sparta", "warpx-pm"};
  return kNames;
}

std::string CanonicalizeRequest(PlacementRequest& req) {
  const std::string app_lower = Lower(req.app);
  bool app_ok = false;
  for (const auto& name : apps::AppNames()) {
    if (Lower(name) == app_lower) {
      req.app = name;
      app_ok = true;
      break;
    }
  }
  if (!app_ok) {
    return "unknown application '" + req.app +
           "' (valid: " + Join(apps::AppNames()) + ")";
  }
  req.policy = Lower(req.policy);
  if (std::find(PolicyNames().begin(), PolicyNames().end(), req.policy) ==
      PolicyNames().end()) {
    return "unknown policy '" + req.policy +
           "' (valid: " + Join(PolicyNames()) + ")";
  }
  if (!(req.scale > 0)) return "scale must be > 0";
  if (!(req.work > 0)) return "work must be > 0";
  if (req.policy != "merch") {
    req.train_regions = 0;  // training budget is meaningless: one cache slot
  } else if (req.train_regions == 0) {
    return "train_regions must be > 0 for policy 'merch'";
  }
  return {};
}

std::string CanonicalKey(const PlacementRequest& req) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s|%s|%.17g|%.17g|%zu|%llu",
                req.app.c_str(), req.policy.c_str(), req.scale, req.work,
                req.train_regions,
                static_cast<unsigned long long>(req.seed));
  return buf;
}

}  // namespace merch::service
