// Placement-query descriptors exchanged with the PlacementService.
//
// A PlacementRequest names one (application, policy, scale, work,
// training-budget, seed) simulation; a PlacementResult carries the summary
// a guidance client needs: makespan, the paper's A.C.V load-balance
// metric, migration volume, and the chosen per-object placements (final
// heat-weighted DRAM fraction per registered object).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace merch::service {

struct PlacementRequest {
  std::string app = "SpGEMM";
  /// One of: pm, mm, mo, merch, sparta, warpx-pm.
  std::string policy = "merch";
  double scale = 1.0;             // footprint scale (1.0 = paper Table 2)
  double work = 1.0;              // per-task access-count scale
  std::size_t train_regions = 281;  // correlation-training budget (merch)
  std::uint64_t seed = 42;
};

/// Policy names a request may carry ("all" is a merchctl-level expansion,
/// not a service policy).
const std::vector<std::string>& PolicyNames();

/// Normalize `req` in place: application names resolve case-insensitively
/// against the registry ("spgemm" -> "SpGEMM"), policies lower-case, and
/// `train_regions` collapses to 0 for policies that never train, so
/// e.g. {pm, train_regions=100} and {pm, train_regions=281} share one
/// cache entry. Returns an empty string on success, else a message naming
/// the bad field and the valid values.
std::string CanonicalizeRequest(PlacementRequest& req);

/// Cache/dedup key of a canonicalized request. Doubles are printed with
/// round-trip precision, so requests are equal iff their keys are.
std::string CanonicalKey(const PlacementRequest& req);

/// One object's chosen placement at end of simulation.
struct ObjectPlacement {
  std::string object;
  std::uint64_t bytes = 0;
  double dram_fraction = 0;  // heat-weighted fraction served from DRAM
};

struct PlacementResult {
  PlacementRequest request;
  std::string error;           // empty = success
  double makespan_seconds = 0;
  double task_cov = 0;         // paper's A.C.V (mean CoV of task times)
  std::uint64_t migrated_bytes = 0;
  std::size_t regions = 0;
  std::vector<ObjectPlacement> placements;

  bool ok() const { return error.empty(); }
};

}  // namespace merch::service
