#include "service/placement_service.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "analysis/depgraph.h"
#include "analysis/ir.h"
#include "analysis/lint.h"
#include "analysis/passes.h"
#include "analysis/summaries.h"
#include "apps/registry.h"
#include "baselines/memory_mode_policy.h"
#include "baselines/memory_optimizer.h"
#include "baselines/pm_only.h"
#include "baselines/static_priority.h"
#include "common/env.h"
#include "obs/distributed/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/incremental.h"
#include "sim/policy.h"
#include "workloads/training.h"

namespace merch::service {

PlacementService::PlacementService(Config config)
    : config_(config),
      cache_(config.cache_capacity),
      pool_(config.threads, config.queue_capacity) {}

PlacementService::~PlacementService() { Shutdown(); }

void PlacementService::Shutdown() { pool_.Shutdown(); }

PlacementService::Ticket PlacementService::Submit(PlacementRequest request) {
  return SubmitInternal(std::move(request), nullptr);
}

namespace {

/// Application-instance identity: requests with equal fuse keys share
/// BuildApp + static analysis (policy and train_regions deliberately
/// excluded — they only pick the engine's policy object).
std::string FuseKey(const PlacementRequest& req) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%s|%.17g|%.17g|%llu", req.app.c_str(),
                req.scale, req.work,
                static_cast<unsigned long long>(req.seed));
  return buf;
}

// Defined next to RunPrepared below; RunIncrementalJob shares it.
std::unique_ptr<sim::PlacementPolicy> MakeRequestPolicy(
    const PlacementService::PreparedApp& prepared, const PlacementRequest& req,
    const core::MerchandiserSystem* system,
    core::GreedyResultCache* greedy_cache, std::string* error);

}  // namespace

std::vector<PlacementService::Ticket> PlacementService::SubmitFused(
    std::vector<PlacementRequest> requests) {
  return SubmitGrouped(std::move(requests), /*incremental=*/false);
}

std::vector<PlacementService::Ticket> PlacementService::SubmitIncremental(
    std::vector<PlacementRequest> requests) {
  // Escape hatch: MERCH_CKPT=0 restores the plain fused path (shared app
  // build, one standalone engine per member).
  const bool delta = common::EnvToggle("MERCH_CKPT", true);
  return SubmitGrouped(std::move(requests), /*incremental=*/delta);
}

std::vector<PlacementService::Ticket> PlacementService::SubmitGrouped(
    std::vector<PlacementRequest> requests, bool incremental) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  // Group insertion order is submission order, so job dispatch below stays
  // deterministic for a given request list.
  std::vector<std::string> group_order;
  std::map<std::string, std::vector<FusedMember>> groups;
  for (PlacementRequest& request : requests) {
    Ticket ticket;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++submitted_;
    }
    MERCH_METRIC_COUNT("merch_service_submitted_total", 1);
    if (std::string err = CanonicalizeRequest(request); !err.empty()) {
      PlacementResult bad;
      bad.request = std::move(request);
      bad.error = std::move(err);
      std::promise<PlacementResult> p;
      ticket.future = p.get_future().share();
      p.set_value(std::move(bad));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++failed_;
      }
      MERCH_METRIC_COUNT("merch_service_failed_total", 1);
      tickets.push_back(std::move(ticket));
      continue;
    }
    const std::string key = CanonicalKey(request);
    if (auto cached = cache_.Get(key)) {
      std::promise<PlacementResult> p;
      ticket.future = p.get_future().share();
      p.set_value(*std::move(cached));
      ticket.cache_hit = true;
      tickets.push_back(std::move(ticket));
      continue;
    }
    auto promise = std::make_shared<std::promise<PlacementResult>>();
    bool joined = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {  // incl. duplicates earlier in this batch
        ++coalesced_;
        ticket.future = it->second.future;
        ticket.coalesced = true;
        joined = true;
      } else {
        ticket.future = promise->get_future().share();
        InFlight entry;
        entry.future = ticket.future;
        inflight_.emplace(key, std::move(entry));
      }
    }
    if (joined) {
      MERCH_METRIC_COUNT("merch_service_coalesced_total", 1);
      MERCH_TRACE_INSTANT(obs::Category::kService, "service.coalesced");
      tickets.push_back(std::move(ticket));
      continue;
    }
    const std::string fuse = FuseKey(request);
    auto [it, inserted] = groups.try_emplace(fuse);
    if (inserted) group_order.push_back(fuse);
    it->second.push_back(
        FusedMember{key, std::move(request), std::move(promise)});
    tickets.push_back(std::move(ticket));
  }

  for (const std::string& fuse : group_order) {
    auto members =
        std::make_shared<std::vector<FusedMember>>(std::move(groups[fuse]));
    if (members->size() > 1) {
      std::lock_guard<std::mutex> lock(mu_);
      if (incremental) {
        ++incremental_groups_;
      } else {
        ++fused_groups_;
      }
    }
    // The submitter's trace context rides to the worker thread, so the
    // fused-group span lands in the caller's distributed trace.
    const bool accepted = pool_.Submit(
        [this, members, incremental, ctx = obs::CurrentTraceContext()] {
          obs::TraceContextScope scope(ctx);
          if (incremental) {
            RunIncrementalJob(std::move(*members));
          } else {
            RunFusedJob(std::move(*members));
          }
        });
    if (!accepted) {  // shutting down: fail the members instead of hanging
      for (FusedMember& m : *members) {
        PlacementResult bad;
        bad.request = m.req;
        bad.error = "service is shutting down";
        std::vector<Callback> callbacks;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = inflight_.find(m.key);
          if (it != inflight_.end()) {
            callbacks = std::move(it->second.callbacks);
            inflight_.erase(it);
          }
          ++failed_;
        }
        MERCH_METRIC_COUNT("merch_service_failed_total", 1);
        if (callbacks.empty()) {
          m.promise->set_value(std::move(bad));
        } else {
          m.promise->set_value(bad);
          for (Callback& cb : callbacks) cb(bad);
        }
      }
    }
  }
  return tickets;
}

PlacementService::Ticket PlacementService::SubmitAsync(
    PlacementRequest request, Callback done) {
  return SubmitInternal(std::move(request), std::move(done));
}

PlacementService::Ticket PlacementService::SubmitInternal(
    PlacementRequest request, Callback done) {
  Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
  }
  MERCH_METRIC_COUNT("merch_service_submitted_total", 1);
  if (std::string err = CanonicalizeRequest(request); !err.empty()) {
    PlacementResult bad;
    bad.request = std::move(request);
    bad.error = std::move(err);
    std::promise<PlacementResult> p;
    ticket.future = p.get_future().share();
    p.set_value(std::move(bad));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++failed_;
    }
    MERCH_METRIC_COUNT("merch_service_failed_total", 1);
    if (done) done(ticket.future.get());
    return ticket;
  }
  const std::string key = CanonicalKey(request);

  if (auto cached = cache_.Get(key)) {
    std::promise<PlacementResult> p;
    ticket.future = p.get_future().share();
    p.set_value(*std::move(cached));
    ticket.cache_hit = true;
    if (done) done(ticket.future.get());
    return ticket;
  }

  auto promise = std::make_shared<std::promise<PlacementResult>>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      ++coalesced_;
      MERCH_METRIC_COUNT("merch_service_coalesced_total", 1);
      MERCH_TRACE_INSTANT(obs::Category::kService, "service.coalesced");
      ticket.future = it->second.future;
      ticket.coalesced = true;
      if (done) it->second.callbacks.push_back(std::move(done));
      return ticket;
    }
    ticket.future = promise->get_future().share();
    InFlight entry;
    entry.future = ticket.future;
    if (done) entry.callbacks.push_back(std::move(done));
    inflight_.emplace(key, std::move(entry));
  }

  // Capture the submitter's trace context (e.g. the server's per-request
  // context) so the simulation's spans join the caller's trace.
  const bool accepted = pool_.Submit(
      [this, key, request = std::move(request), promise,
       ctx = obs::CurrentTraceContext()]() mutable {
        obs::TraceContextScope scope(ctx);
        RunJob(key, request, promise);
      });
  if (!accepted) {  // shutting down: fail the request instead of hanging it
    PlacementResult bad;
    bad.error = "service is shutting down";
    std::vector<Callback> callbacks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        callbacks = std::move(it->second.callbacks);
        inflight_.erase(it);
      }
      ++failed_;
    }
    MERCH_METRIC_COUNT("merch_service_failed_total", 1);
    promise->set_value(std::move(bad));
    for (Callback& cb : callbacks) cb(ticket.future.get());
  }
  return ticket;
}

std::optional<PlacementResult> PlacementService::Peek(
    PlacementRequest request) {
  if (!CanonicalizeRequest(request).empty()) return std::nullopt;
  return cache_.Get(CanonicalKey(request));
}

std::size_t PlacementService::QueueDepth() const {
  return pool_.queue_depth();
}

void PlacementService::RunJob(
    const std::string& key, const PlacementRequest& req,
    std::shared_ptr<std::promise<PlacementResult>> promise) {
  MERCH_TRACE_SPAN_VAR(request_span, obs::Category::kService,
                       "service.request");
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const core::MerchandiserSystem> system;
  if (req.policy == "merch") system = TrainedSystem(req.train_regions);

  PlacementResult result = RunRequest(req, system.get(), &greedy_cache_);
  FinishJob(key, std::move(result), promise);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  MERCH_METRIC_OBSERVE_TRACED("merch_service_request_seconds", seconds);
}

void PlacementService::RunFusedJob(std::vector<FusedMember> members) {
  MERCH_TRACE_SPAN_VAR(group_span, obs::Category::kService,
                       "service.fused_group");
  if (members.empty()) return;
  // One app build + analysis pass for the whole group; every member's
  // engine run reads the shared immutable instance.
  const PreparedApp prepared = PrepareApp(members.front().req);
  for (FusedMember& m : members) {
    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const core::MerchandiserSystem> system;
    if (m.req.policy == "merch") system = TrainedSystem(m.req.train_regions);
    PlacementResult result =
        RunPrepared(prepared, m.req, system.get(), &greedy_cache_);
    FinishJob(m.key, std::move(result), m.promise);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    MERCH_METRIC_OBSERVE_TRACED("merch_service_request_seconds", seconds);
  }
}

void PlacementService::RunIncrementalJob(std::vector<FusedMember> members) {
  MERCH_TRACE_SPAN_VAR(group_span, obs::Category::kService,
                       "service.incremental_group");
  if (members.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  const PreparedApp prepared = PrepareApp(members.front().req);

  // Build every member's policy up front. Members this app cannot satisfy
  // (prepare failure, undefined sparta/warpx-pm priority, unknown policy)
  // finish immediately with the same error the per-request path produces;
  // the rest share one fork-tree ladder per cache mode inside
  // RunIncrementalSweep.
  struct Live {
    FusedMember* member = nullptr;
    std::shared_ptr<const core::MerchandiserSystem> system;  // keepalive:
    // merch policies reference correlation functions the system owns
    std::unique_ptr<sim::PlacementPolicy> policy;
  };
  std::vector<Live> live;
  live.reserve(members.size());
  for (FusedMember& m : members) {
    PlacementResult out;
    out.request = m.req;
    if (!prepared.error.empty()) {
      out.error = prepared.error;
      FinishJob(m.key, std::move(out), m.promise);
      continue;
    }
    Live entry;
    entry.member = &m;
    if (m.req.policy == "merch") {
      entry.system = TrainedSystem(m.req.train_regions);
    }
    try {
      entry.policy = MakeRequestPolicy(prepared, m.req, entry.system.get(),
                                       &greedy_cache_, &out.error);
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    if (entry.policy == nullptr) {
      FinishJob(m.key, std::move(out), m.promise);
      continue;
    }
    live.push_back(std::move(entry));
  }

  if (!live.empty()) {
    // Every member shares one FuseKey, hence one machine spec — the
    // single-ladder precondition (sim/incremental.h) holds by construction.
    std::vector<sim::SweepPointSpec> specs;
    specs.reserve(live.size());
    for (const Live& entry : live) {
      specs.push_back(
          sim::SweepPointSpec{prepared.machine, entry.policy.get()});
    }
    try {
      const std::vector<sim::SweepPointOutcome> outcomes =
          sim::RunIncrementalSweep(prepared.bundle.workload, prepared.cfg,
                                   specs);
      const auto& objects = prepared.bundle.workload.objects;
      for (std::size_t i = 0; i < live.size(); ++i) {
        const sim::SweepPointOutcome& o = outcomes[i];
        const FusedMember& m = *live[i].member;
        PlacementResult out;
        out.request = m.req;
        out.makespan_seconds = o.result.total_seconds;
        out.task_cov = o.result.AverageCoV();
        out.migrated_bytes = static_cast<std::uint64_t>(
            o.result.migration.bytes_to_dram + o.result.migration.bytes_to_pm);
        out.regions = o.result.regions.size();
        out.placements.reserve(objects.size());
        for (std::size_t j = 0; j < objects.size(); ++j) {
          out.placements.push_back(
              {objects[j].name, objects[j].bytes, o.final_dram_fraction[j]});
        }
        FinishJob(m.key, std::move(out), m.promise);
      }
    } catch (const std::exception& e) {
      for (const Live& entry : live) {
        PlacementResult out;
        out.request = entry.member->req;
        out.error = e.what();
        FinishJob(entry.member->key, std::move(out), entry.member->promise);
      }
    }
  }

  // One engine drove the whole ladder, so per-member wall time has no
  // direct meaning; attribute the amortized share to each member to keep
  // the histogram comparable with the per-request and fused paths.
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (std::size_t i = 0; i < members.size(); ++i) {
    MERCH_METRIC_OBSERVE_TRACED("merch_service_request_seconds",
                                seconds / static_cast<double>(members.size()));
  }
}

void PlacementService::FinishJob(
    const std::string& key, PlacementResult result,
    const std::shared_ptr<std::promise<PlacementResult>>& promise) {
  if (result.ok()) cache_.Put(key, result);
  std::vector<Callback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      callbacks = std::move(it->second.callbacks);
      inflight_.erase(it);
    }
    ++simulated_;
    if (!result.ok()) ++failed_;
  }
  MERCH_METRIC_COUNT("merch_service_simulated_total", 1);
  if (!result.ok()) MERCH_METRIC_COUNT("merch_service_failed_total", 1);
  // Resolve the shared future before running continuations, so a callback
  // that hands off to a future-waiting path observes a completed future.
  if (callbacks.empty()) {
    promise->set_value(std::move(result));
  } else {
    promise->set_value(result);
    for (Callback& cb : callbacks) cb(result);
  }
}

ServiceStats PlacementService::Stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.coalesced = coalesced_;
    s.simulated = simulated_;
    s.failed = failed_;
    s.fused_groups = fused_groups_;
    s.incremental_groups = incremental_groups_;
  }
  s.greedy_hits = greedy_cache_.hits();
  s.greedy_misses = greedy_cache_.misses();
  s.cache = cache_.Stats();
  s.threads = pool_.thread_count();
  return s;
}

std::shared_ptr<const core::MerchandiserSystem> PlacementService::TrainedSystem(
    std::size_t train_regions) {
  std::lock_guard<std::mutex> lock(train_mu_);
  auto it = systems_.find(train_regions);
  if (it != systems_.end()) return it->second;
  workloads::TrainingConfig training;
  training.num_regions = train_regions;
  auto system = std::make_shared<const core::MerchandiserSystem>(
      core::MerchandiserSystem::Train(training));
  systems_.emplace(train_regions, system);
  return system;
}

sim::MachineSpec PlacementService::RequestMachine(const PlacementRequest& req) {
  sim::MachineSpec machine = sim::MachineSpec::Paper();
  for (auto tier : {hm::Tier::kDram, hm::Tier::kPm}) {
    machine.hm[tier].capacity_bytes = static_cast<std::uint64_t>(
        static_cast<double>(machine.hm[tier].capacity_bytes) * req.scale);
  }
  return machine;
}

sim::SimConfig PlacementService::RequestSimConfig(const PlacementRequest& req) {
  sim::SimConfig cfg;
  cfg.epoch_seconds = 0.05;
  // Downscaled footprints shrink the placement granularity with them so a
  // run still spans many pages (same rule merchctl has always applied).
  cfg.page_bytes =
      req.scale >= 0.5
          ? 2 * MiB
          : std::max<std::uint64_t>(
                64 * KiB,
                static_cast<std::uint64_t>(2.0 * MiB * req.scale * 16));
  cfg.migration_gbps = 2.0;
  cfg.seed = req.seed;
  return cfg;
}

PlacementResult PlacementService::RunRequest(
    const PlacementRequest& req, const core::MerchandiserSystem* system,
    core::GreedyResultCache* greedy_cache) {
  return RunPrepared(PrepareApp(req), req, system, greedy_cache);
}

PlacementService::PreparedApp PlacementService::PrepareApp(
    const PlacementRequest& req) {
  PreparedApp prepared;
  try {
    prepared.bundle = apps::BuildApp(req.app, req.scale, req.work);

    // Static-analysis gate: reject requests whose kernel IR carries
    // error-severity lint findings (e.g. a referenced object the app never
    // registered with LB_HM_config) — the runtime could not place it.
    const analysis::Module module = analysis::ModuleFromWorkload(
        prepared.bundle.workload, prepared.bundle.task_irs);
    std::vector<analysis::Finding> findings =
        analysis::Lint(module, analysis::Analyze(module));

    prepared.machine = RequestMachine(req);

    // Dependence gate: a provably racy task graph (a non-owner task
    // writing another task's object with exact overlap evidence) cannot
    // be placed meaningfully — the access counts themselves are
    // undefined. Rejected like lint errors.
    const analysis::TaskGraph graph =
        analysis::BuildTaskGraph(module, analysis::Summarize(module));
    const std::vector<analysis::Finding> dep =
        analysis::LintDependences(module, graph, prepared.machine.hm);
    findings.insert(findings.end(), dep.begin(), dep.end());

    if (analysis::HasErrors(findings)) {
      for (const analysis::Finding& f : findings) {
        if (f.severity != analysis::Severity::kError) continue;
        if (!prepared.error.empty()) prepared.error += "; ";
        prepared.error += "lint: [" + f.code + "] " + f.message;
      }
      return prepared;
    }
    prepared.cfg = RequestSimConfig(req);
  } catch (const std::exception& e) {
    prepared.error = e.what();
  }
  return prepared;
}

namespace {

/// The policy switch shared by RunPrepared and RunIncrementalJob: builds
/// the engine policy a request names, or returns null with `*error` set
/// for policies the app does not define (messages unchanged from the
/// original per-request path). May throw; callers keep their try/catch so
/// construction failures land in the result either way.
std::unique_ptr<sim::PlacementPolicy> MakeRequestPolicy(
    const PlacementService::PreparedApp& prepared, const PlacementRequest& req,
    const core::MerchandiserSystem* system,
    core::GreedyResultCache* greedy_cache, std::string* error) {
  const apps::AppBundle& bundle = prepared.bundle;
  if (req.policy == "pm") {
    return std::make_unique<baselines::PmOnlyPolicy>();
  }
  if (req.policy == "mm") {
    return std::make_unique<baselines::MemoryModePolicy>();
  }
  if (req.policy == "mo") {
    return std::make_unique<baselines::MemoryOptimizerPolicy>();
  }
  if (req.policy == "sparta") {
    if (bundle.sparta_priority.empty()) {
      *error = "policy 'sparta' is not defined for app " + req.app;
      return nullptr;
    }
    return std::make_unique<baselines::StaticPriorityPolicy>(
        "Sparta-like", bundle.sparta_priority);
  }
  if (req.policy == "warpx-pm") {
    if (bundle.lifetime_priority.empty()) {
      *error = "policy 'warpx-pm' is not defined for app " + req.app;
      return nullptr;
    }
    return std::make_unique<baselines::StaticPriorityPolicy>(
        "WarpX-PM", bundle.lifetime_priority);
  }
  if (req.policy == "merch") {
    if (system == nullptr) {
      *error = "policy 'merch' needs a trained MerchandiserSystem";
      return nullptr;
    }
    core::MerchandiserConfig merch_config;
    merch_config.greedy_cache = greedy_cache;
    return system->MakePolicy(bundle.workload, prepared.machine,
                              merch_config);
  }
  *error = "unknown policy '" + req.policy + "'";
  return nullptr;
}

}  // namespace

PlacementResult PlacementService::RunPrepared(
    const PreparedApp& prepared, const PlacementRequest& req,
    const core::MerchandiserSystem* system,
    core::GreedyResultCache* greedy_cache) {
  PlacementResult out;
  out.request = req;
  if (!prepared.error.empty()) {
    out.error = prepared.error;
    return out;
  }
  const apps::AppBundle& bundle = prepared.bundle;
  try {
    std::unique_ptr<sim::PlacementPolicy> policy =
        MakeRequestPolicy(prepared, req, system, greedy_cache, &out.error);
    if (policy == nullptr) return out;

    sim::Engine engine(bundle.workload, prepared.machine, prepared.cfg,
                       policy.get());
    const sim::SimResult r = engine.Run();
    out.makespan_seconds = r.total_seconds;
    out.task_cov = r.AverageCoV();
    out.migrated_bytes = static_cast<std::uint64_t>(
        r.migration.bytes_to_dram + r.migration.bytes_to_pm);
    out.regions = r.regions.size();
    out.placements.reserve(bundle.workload.objects.size());
    for (std::size_t i = 0; i < bundle.workload.objects.size(); ++i) {
      const auto& obj = bundle.workload.objects[i];
      out.placements.push_back(
          {obj.name, obj.bytes, engine.ObjectDramFraction(i)});
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace merch::service
