// High-level facade assembling the Merchandiser system (Section 5.3's
// automated workflow):
//
// Offline, once ever:        TrainCorrelation()       (scaling function f)
// Offline, once per app:     PrepareApplication()     (basic-block timing,
//                                                      static analysis,
//                                                      offline alphas)
// Online, per run:           MakePolicy()             (the runtime)
#pragma once

#include <memory>

#include "core/correlation.h"
#include "core/homogeneous.h"
#include "core/merchandiser_policy.h"
#include "sim/machine.h"
#include "sim/workload.h"
#include "workloads/training.h"

namespace merch::core {

class MerchandiserSystem {
 public:
  /// Offline step 1: generate code-sample training data and fit the
  /// correlation function. `training` defaults to the paper's setup (281
  /// regions x 10 placements, GBR, 8 events). Expensive (minutes at paper
  /// scale); train once and reuse across applications — exactly the
  /// paper's claim ("the construction of f happens only once").
  static MerchandiserSystem Train(
      workloads::TrainingConfig training = {},
      CorrelationFunction::Config correlation = {});

  /// Build from an already-trained correlation function (benches train one
  /// and share it).
  explicit MerchandiserSystem(CorrelationFunction correlation)
      : correlation_(std::move(correlation)) {}

  /// Offline steps 2-4 for one application, then the runtime policy. The
  /// returned policy borrows this system's correlation function; keep the
  /// system alive while the policy runs.
  std::unique_ptr<MerchandiserPolicy> MakePolicy(
      const sim::Workload& workload, const sim::MachineSpec& machine,
      MerchandiserConfig config = {}) const;

  const CorrelationFunction& correlation() const { return correlation_; }

 private:
  CorrelationFunction correlation_;
};

}  // namespace merch::core
