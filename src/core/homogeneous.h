// Performance prediction on homogeneous memory (paper Section 5.2).
//
// Offline (once per application): measure each basic block's (kernel's)
// execution time on DRAM only and PM only, using the base input.
// Online (per new input): scale the base-input block execution counts by
// the similarity between the base and new input — the paper computes the
// cosine similarity of the two object-size vectors and uses it to scale
// the block counts. Cosine similarity alone is magnitude-blind, so, as in
// the paper's usage (inputs of the same shape but different size), we
// scale by cos(base, new) * (|new| / |base|) — the projection of the new
// size vector onto the base direction, normalised by the base length.
// For same-direction inputs this reduces exactly to the size ratio.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace merch::core {

class HomogeneousPredictor {
 public:
  HomogeneousPredictor() = default;

  /// Offline step: run the base region (default: region 0) of `workload`
  /// on PM only and DRAM only and record per-kernel times. This mirrors
  /// "measuring the execution time of basic blocks on DRAM and PM"
  /// (Section 5.3, offline step 2) and happens once per application.
  static HomogeneousPredictor Prepare(const sim::Workload& workload,
                                      const sim::MachineSpec& machine,
                                      std::size_t base_region = 0);

  /// Predicted execution time of `task` for an input with the given
  /// object sizes, if all accesses were served by `tier`. The similarity
  /// scale uses only the objects this task accesses (a task's basic-block
  /// counts scale with *its* input, not the global footprint).
  double Predict(TaskId task, hm::Tier tier,
                 const std::vector<std::uint64_t>& new_sizes) const;

  bool prepared() const { return !per_task_.empty(); }
  const std::vector<std::uint64_t>& base_sizes() const { return base_sizes_; }

 private:
  struct TaskProfile {
    std::vector<double> pm_seconds;    // per kernel, base input
    std::vector<double> dram_seconds;  // per kernel, base input
    std::vector<std::size_t> objects;  // objects the task accesses
  };
  std::map<TaskId, TaskProfile> per_task_;
  std::vector<std::uint64_t> base_sizes_;
};

/// Similarity-based count scale (see file comment): the factor applied to
/// base-input basic-block counts for the new input.
double SimilarityScale(const std::vector<std::uint64_t>& base_sizes,
                       const std::vector<std::uint64_t>& new_sizes);

}  // namespace merch::core
