// Object-level access-pattern classification (the Spindle stand-in).
//
// Classifies each (loop, object) pair into the paper's four patterns
// (Section 4):
//   Stream  — affine stride-1 stepping (incl. delta/reduction/transpose)
//   Strided — affine constant stride > 1
//   Stencil — neighborhood subscripts with loop-carried reuse
//   Random  — indirect addressing (gather/scatter/pointer chase)
// Opaque subscripts classify as Unknown and are *treated* as Random
// downstream, with alpha left to runtime refinement (paper: "Handling
// unknown patterns").
#pragma once

#include <vector>

#include "core/kernel_ir.h"
#include "trace/pattern.h"

namespace merch::core {

/// True when `ref` touches `object` — either directly or as the index
/// array of an indirect (gather/scatter) subscript. The single source of
/// truth for "is this object referenced here"; classification, lowering
/// and the analysis passes all funnel through it.
bool RefTouchesObject(const ArrayRef& ref, std::size_t object);

/// Pattern of one reference considered alone. Affine stride 0 (a scalar
/// broadcast like A[c]) classifies as kStream at this level; the analysis
/// layer refines it to a degenerate single-line pattern so footprint
/// estimation does not charge the whole object (analysis::PatternClass).
trace::AccessPattern ClassifyRef(const ArrayRef& ref);

/// Pattern of one object within one loop. When an object is referenced in
/// several ways, the least cache-friendly classification wins
/// (Random > Unknown > Stencil > Strided > Stream) — the conservative
/// choice for placement.
trace::AccessPattern ClassifyObjectInLoop(const LoopNest& loop,
                                          std::size_t object);

/// Per-object classification across a whole task: least-friendly pattern
/// over all loops referencing the object. Objects never referenced get
/// kUnknown.
std::vector<trace::AccessPattern> ClassifyTask(const TaskIr& task,
                                               std::size_t num_objects);

/// Distinct patterns appearing across tasks (Table 1 rows), in enum order.
std::vector<trace::AccessPattern> DistinctPatterns(
    const std::vector<TaskIr>& tasks, std::size_t num_objects);

}  // namespace merch::core
