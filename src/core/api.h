// The user-facing Merchandiser API (paper Section 4, "User API"):
//
//   void *LB_HM_config(void* objects, int* sizes)
//
// The user lists the major data objects right before task execution; their
// sizes may be runtime variables but are known at that point. The user
// does not need to know which objects cause load imbalance — any object
// may be passed. This header provides a faithful C-style entry point plus
// the registry the runtime consumes; applications in this repository call
// it from their setup code exactly where the paper places it (right before
// the parallel region).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace merch::core {

struct RegisteredObject {
  const void* address = nullptr;   // application pointer (identity only)
  std::uint64_t bytes = 0;
  std::string label;
  TaskId owner = kInvalidTask;     // filled by task-semantic profiling
};

/// Registry of objects handed to LB_HM_config. One per application run.
class HmConfigRegistry {
 public:
  /// Register one object; returns its ObjectId. Re-registering the same
  /// address updates the size (sizes change across task instances).
  ObjectId Register(const void* address, std::uint64_t bytes,
                    std::string label = {});

  /// Bulk registration matching the paper's signature semantics.
  void RegisterAll(const std::vector<const void*>& objects,
                   const std::vector<std::uint64_t>& sizes);

  std::size_t size() const { return objects_.size(); }
  const RegisteredObject& object(ObjectId id) const { return objects_[id]; }
  /// Current size vector (the Eq. 1 / Section 5.2 input vector).
  std::vector<std::uint64_t> SizeVector() const;

  /// Lookup by address; kInvalidObject if absent.
  ObjectId Find(const void* address) const;

  void Clear() { objects_.clear(); }

  /// Process-wide registry used by the C-style entry point.
  static HmConfigRegistry& Global();

 private:
  std::vector<RegisteredObject> objects_;
};

}  // namespace merch::core

extern "C" {
/// Paper-faithful C entry point. `objects` points to an array of `count`
/// object pointers, `sizes` to their byte sizes. Returns an opaque handle
/// (the global registry). Place the call right before task execution.
void* LB_HM_config(void** objects, const long long* sizes, int count);
}
