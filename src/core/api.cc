#include "core/api.h"

namespace merch::core {

ObjectId HmConfigRegistry::Register(const void* address, std::uint64_t bytes,
                                    std::string label) {
  const ObjectId existing = Find(address);
  if (existing != kInvalidObject) {
    objects_[existing].bytes = bytes;
    if (!label.empty()) objects_[existing].label = std::move(label);
    return existing;
  }
  RegisteredObject obj;
  obj.address = address;
  obj.bytes = bytes;
  obj.label = label.empty() ? "obj" + std::to_string(objects_.size())
                            : std::move(label);
  objects_.push_back(std::move(obj));
  return static_cast<ObjectId>(objects_.size() - 1);
}

void HmConfigRegistry::RegisterAll(const std::vector<const void*>& objects,
                                   const std::vector<std::uint64_t>& sizes) {
  const std::size_t n = std::min(objects.size(), sizes.size());
  for (std::size_t i = 0; i < n; ++i) Register(objects[i], sizes[i]);
}

std::vector<std::uint64_t> HmConfigRegistry::SizeVector() const {
  std::vector<std::uint64_t> out;
  out.reserve(objects_.size());
  for (const RegisteredObject& o : objects_) out.push_back(o.bytes);
  return out;
}

ObjectId HmConfigRegistry::Find(const void* address) const {
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].address == address) return static_cast<ObjectId>(i);
  }
  return kInvalidObject;
}

HmConfigRegistry& HmConfigRegistry::Global() {
  static HmConfigRegistry registry;
  return registry;
}

}  // namespace merch::core

extern "C" void* LB_HM_config(void** objects, const long long* sizes,
                              int count) {
  auto& registry = merch::core::HmConfigRegistry::Global();
  for (int i = 0; i < count; ++i) {
    registry.Register(objects[i],
                      sizes[i] > 0 ? static_cast<std::uint64_t>(sizes[i]) : 0);
  }
  return &registry;
}
