#include "core/merchandiser_policy.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/env.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace merch::core {
namespace {

using trace::AccessPattern;

constexpr double kCurveQuartiles[] = {0.25, 0.5, 0.75, 1.0};

int Severity(AccessPattern p) {
  switch (p) {
    case AccessPattern::kStream:
      return 0;
    case AccessPattern::kStrided:
      return 1;
    case AccessPattern::kStencil:
      return 2;
    case AccessPattern::kUnknown:
      return 3;
    case AccessPattern::kRandom:
      return 4;
  }
  return 4;
}

}  // namespace

MerchandiserPolicy::MerchandiserPolicy(const CorrelationFunction* correlation,
                                       HomogeneousPredictor homogeneous,
                                       MerchandiserConfig config)
    : correlation_(correlation),
      homogeneous_(std::move(homogeneous)),
      model_(correlation_),
      config_(config),
      pte_(config.pte, config.seed),
      thermostat_({}, config.seed + 1),
      pebs_(config.pebs_period, config.seed + 2),
      memo_enabled_(
          common::EnvToggle("MERCH_POLICY_MEMO", config.decision_memo)) {
  assert(correlation_ != nullptr && correlation_->trained());
}

void MerchandiserPolicy::BuildAlphaEstimators(const sim::Workload& workload) {
  if (workload.regions.empty()) return;
  const sim::Region& base = workload.regions.front();
  for (const sim::TaskProgram& tp : base.tasks) {
    for (const sim::Kernel& k : tp.kernels) {
      for (const trace::ObjectAccess& a : k.accesses) {
        const TaskObjectKey key{tp.task, a.object};
        auto it = alpha_.find(key);
        if (it == alpha_.end()) {
          alpha_.emplace(key, AlphaEstimator(a.pattern, a.element_bytes,
                                             a.stride_elements));
        } else if (Severity(a.pattern) > Severity(it->second.pattern())) {
          it->second = AlphaEstimator(a.pattern, a.element_bytes,
                                      a.stride_elements);
        }
      }
    }
  }
}

void MerchandiserPolicy::OnSimulationStart(sim::SimContext& ctx) {
  const sim::Workload& w = ctx.workload();
  BuildAlphaEstimators(w);
  base_sizes_.clear();
  if (!w.regions.empty() && !w.regions.front().active_bytes.empty()) {
    base_sizes_ = w.regions.front().active_bytes;
  } else {
    for (const sim::ObjectDecl& o : w.objects) base_sizes_.push_back(o.bytes);
  }
  object_target_pages_.assign(w.objects.size(), 0);
  quartile_pages_.assign(w.objects.size() * 4, -1.0);
  object_base_total_valid_ = false;
  candidate_memo_region_ = nullptr;
}

double MerchandiserPolicy::QuartilePages(const trace::HeatProfile& heat,
                                         std::size_t object,
                                         int quartile_index,
                                         std::uint64_t npages) {
  const double q = kCurveQuartiles[quartile_index];
  if (!memo_enabled_) {
    return static_cast<double>(heat.PagesForFraction(q, npages));
  }
  double& slot = quartile_pages_[object * 4 + quartile_index];
  if (slot < 0) slot = static_cast<double>(heat.PagesForFraction(q, npages));
  return slot;
}

void MerchandiserPolicy::OnInterval(sim::SimContext& ctx) {
  MERCH_TRACE_SPAN(obs::Category::kCore, "core.interval");
  sim::AccessOracle& oracle = ctx.oracle();
  const sim::Workload& w = ctx.workload();
  const std::size_t region = ctx.region_index();

  // Base-input object profiling: PEBS-attributed per-(task, object) counts
  // accumulated over the base instance (Section 4, "Estimation of memory
  // access count": measure at data-object level during the first
  // execution).
  if (region == 0 && !base_collected_) {
    for (const auto& [key, est] : alpha_) {
      const double truth =
          oracle.TaskObjectEpochAccesses(key.object, key.task);
      if (truth > 0) base_accesses_[key] += pebs_.Estimate(truth);
    }
  }

  // Hot-page detection via the PTE-scan sampler, then migration. During the
  // base instance this is plain MemoryOptimizer behaviour; afterwards each
  // migration is checked against the owning task's quota (Section 6).
  const auto hot = pte_.Profile(oracle);
  const int scans = config_.pte.scans_per_interval;
  const std::uint64_t salt = ++interval_counter_;
  auto heat_fn = [&oracle, scans, salt](PageId p) {
    return profiler::SaturatedEvictionHeat(oracle, p, scans, salt);
  };
  auto floor_fn = [&oracle, scans](PageId first_page) {
    return profiler::SaturatedEvictionHeatFloor(
        oracle.EpochAccessesFloor(first_page), scans);
  };
  auto batch_fn = [&oracle, scans, salt](std::span<const PageId> pages,
                                         double obj_floor, double threshold,
                                         std::span<double> out) {
    profiler::SaturatedEvictionHeatBatch(oracle, pages, scans, salt,
                                         obj_floor, threshold, out);
  };
  std::size_t migrated = 0;
  std::vector<PageId> batch;
  for (const profiler::HotPage& h : hot) {
    if (migrated >= config_.interval_migration_pages) break;
    if (oracle.PageTier(h.page) != hm::Tier::kPm) continue;
    if (region > 0) {
      const TaskId task = oracle.PageTask(h.page);
      if (task != kInvalidTask) {
        const auto quota = quota_pages_.find(task);
        const std::uint64_t allowed =
            quota == quota_pages_.end() ? 0 : quota->second;
        if (used_pages_[task] >= allowed) continue;  // quota reached: skip
        ++used_pages_[task];
      } else {
        // Shared page: allowed while any accessing task has headroom.
        std::uint64_t total_quota = 0, total_used = 0;
        for (const auto& [t, q] : quota_pages_) {
          total_quota += q;
          total_used += used_pages_[t];
        }
        if (total_used >= total_quota) continue;
      }
    }
    batch.push_back(h.page);
    ++migrated;
  }
  if (!batch.empty()) {
    ctx.migration().MakeRoomInDram(batch.size(), heat_fn, floor_fn, batch_fn);
    ctx.migration().MigratePages(batch, hm::Tier::kDram);
  }
  (void)w;
}

const std::vector<double>& MerchandiserPolicy::ObjectBaseTotals(
    const sim::Workload& w) {
  if (!memo_enabled_ || !object_base_total_valid_) {
    object_base_total_.assign(w.objects.size(), 0.0);
    for (const auto& [key, acc] : base_accesses_) {
      object_base_total_[key.object] += acc;
    }
    object_base_total_valid_ = true;
  }
  return object_base_total_;
}

std::vector<MerchandiserPolicy::PlacementCandidate>
MerchandiserPolicy::BuildCandidates(sim::SimContext& ctx,
                                    const sim::Region& region, TaskId task,
                                    double* total_est) {
  // The decision and ApplyPlacement both need this task's candidates for
  // the same (region, alpha) state — memoize the first build. The memo is
  // cleared whenever the region or the alpha version moves on.
  if (memo_enabled_) {
    if (candidate_memo_region_ == &region &&
        candidate_memo_alpha_version_ == alpha_version_) {
      const auto it = candidate_memo_.find(task);
      if (it != candidate_memo_.end()) {
        if (total_est != nullptr) *total_est = it->second.total_est;
        return it->second.cands;
      }
    } else {
      candidate_memo_.clear();
      candidate_memo_region_ = &region;
      candidate_memo_alpha_version_ = alpha_version_;
    }
  }
  MERCH_TRACE_SPAN(obs::Category::kCore, "core.estimate_accesses");
  const sim::Workload& w = ctx.workload();
  // Per-access DRAM benefit weight per (task, object): the knapsack item
  // *value* is the performance gained by serving the access from DRAM
  // (paper Section 6), which is larger for latency-bound random accesses
  // and for writes (PM's asymmetric write path) than for prefetched
  // sequential reads. Derived from the static classification + read/write
  // mix of the task's kernels.
  std::map<std::size_t, double> benefit;
  {
    const hm::TierSpec& pm_spec = ctx.machine().hm[hm::Tier::kPm];
    const hm::TierSpec& dram_spec = ctx.machine().hm[hm::Tier::kDram];
    for (const sim::TaskProgram& tp : w.regions.front().tasks) {
      if (tp.task != task) continue;
      std::map<std::size_t, std::pair<double, double>> acc;  // (weight, n)
      for (const sim::Kernel& k : tp.kernels) {
        for (const trace::ObjectAccess& a : k.accesses) {
          const trace::PatternTraits& traits = trace::TraitsOf(a.pattern);
          auto lat = [&](const hm::TierSpec& spec) {
            const double base = traits.sequential_latency ? spec.seq_latency_ns
                                                          : spec.rand_latency_ns;
            return base *
                   (a.read_fraction +
                    (1.0 - a.read_fraction) * spec.write_latency_factor) /
                   traits.mlp;
          };
          const double gain = lat(pm_spec) - lat(dram_spec);
          const auto n = static_cast<double>(a.program_accesses);
          acc[a.object].first += gain * n;
          acc[a.object].second += n;
        }
      }
      for (const auto& [obj, wn] : acc) {
        if (wn.second > 0) benefit[obj] = wn.first / wn.second;
      }
    }
  }
  // Per-object base-access totals, for shared-object cost shares.
  const std::vector<double>& object_base_total = ObjectBaseTotals(w);
  std::vector<PlacementCandidate> cands;
  double total = 0;
  for (std::size_t obj = 0; obj < w.objects.size(); ++obj) {
    const auto it = alpha_.find(TaskObjectKey{task, obj});
    const auto base_it = base_accesses_.find(TaskObjectKey{task, obj});
    if (it == alpha_.end() || base_it == base_accesses_.end()) continue;
    if (!it->second.has_base()) {
      it->second.SetBase(static_cast<double>(base_sizes_[obj]),
                         base_it->second);
    }
    const auto& extent = ctx.pages().extent(ctx.oracle().handle(obj));
    if (extent.num_pages == 0) continue;
    const double size = static_cast<double>(
        region.active_bytes.empty() ? base_sizes_[obj]
                                    : region.active_bytes[obj]);
    const double est = it->second.EstimateAccesses(size);
    if (est <= 0) continue;
    total += est;
    const double share = w.objects[obj].owner == task
                             ? 1.0
                             : (object_base_total[obj] > 0
                                    ? base_it->second / object_base_total[obj]
                                    : 1.0);
    const auto bit = benefit.find(obj);
    cands.push_back(PlacementCandidate{
        obj, est, static_cast<double>(extent.num_pages),
        share * static_cast<double>(extent.num_pages),
        bit != benefit.end() ? bit->second : 1.0});
  }
  // Budget is spent by access density (estimated accesses per page). The
  // per-access benefit weight is recorded on each candidate for
  // diagnostics; weighting the ranking by it was evaluated and found to
  // underperform plain density under bandwidth contention (the gain
  // estimate ignores that serving one stream barely moves a saturated
  // tier's queueing factor).
  std::sort(cands.begin(), cands.end(),
            [](const PlacementCandidate& a, const PlacementCandidate& b) {
              return a.est_accesses / a.pages > b.est_accesses / b.pages;
            });
  if (memo_enabled_) {
    candidate_memo_[task] = CandidateMemo{cands, total};
  }
  if (total_est != nullptr) *total_est = total;
  return cands;
}

void MerchandiserPolicy::OnRegionStart(sim::SimContext& ctx,
                                       std::size_t region) {
  if (region == 0) return;  // base instance: profile-only
  MERCH_TRACE_SPAN_VAR(decision_span, obs::Category::kCore,
                       "core.instance_decision");
  decision_span.set_arg("region", static_cast<std::int64_t>(region));
  const auto decision_start = std::chrono::steady_clock::now();
  const sim::Workload& w = ctx.workload();
  const sim::Region& reg = w.regions[region];
  const std::vector<std::uint64_t>& new_sizes =
      reg.active_bytes.empty() ? base_sizes_ : reg.active_bytes;

  // Per-task inputs for Algorithm 1.
  std::vector<GreedyTaskInput> inputs;
  std::vector<TaskId> task_order;
  InstanceDecision decision;
  decision.region = region;
  for (const sim::TaskProgram& tp : reg.tasks) {
    GreedyTaskInput in;
    in.task = tp.task;
    double total_acc = 0;
    const auto cands = BuildCandidates(ctx, reg, tp.task, &total_acc);
    in.total_accesses = total_acc;
    double footprint_pages = 0;
    for (const PlacementCandidate& c : cands) footprint_pages += c.pages_cost;
    in.footprint_pages =
        static_cast<std::uint64_t>(std::ceil(footprint_pages));
    // Page-cost curve: cumulative (access fraction, pages) walking the
    // density-ordered candidates, with intra-object quartiles capturing
    // hottest-page-first placement inside skewed objects.
    if (total_acc > 0) {
      double cum_acc = 0, cum_pages = 0;
      for (const PlacementCandidate& c : cands) {
        const trace::HeatProfile& heat = w.objects[c.object].heat;
        const auto npages = static_cast<std::uint64_t>(c.pages);
        const double cost_ratio = c.pages > 0 ? c.pages_cost / c.pages : 1.0;
        for (int qi = 0; qi < 4; ++qi) {
          const double pages_q = QuartilePages(
              heat, c.object, qi, std::max<std::uint64_t>(1, npages));
          in.pages_for_access_fraction.emplace_back(
              (cum_acc + kCurveQuartiles[qi] * c.est_accesses) / total_acc,
              cum_pages + pages_q * cost_ratio);
        }
        cum_acc += c.est_accesses;
        cum_pages += c.pages_cost;
      }
    }
    in.t_pm_only = homogeneous_.Predict(tp.task, hm::Tier::kPm, new_sizes);
    in.t_dram_only = homogeneous_.Predict(tp.task, hm::Tier::kDram, new_sizes);
    // Workload characteristics: PMCs from the most recent completed
    // instance of this task (walk the history backwards and stop at the
    // first match — same stats the old full forward scan kept last).
    const auto& hist = ctx.history();
    [&] {
      for (auto rit = hist.rbegin(); rit != hist.rend(); ++rit) {
        for (auto tit = rit->tasks.rbegin(); tit != rit->tasks.rend();
             ++tit) {
          if (tit->task == tp.task) {
            in.pmcs = tit->pmcs;
            return;
          }
        }
      }
    }();
    decision.tasks.push_back(tp.task);
    decision.t_pm_only.push_back(in.t_pm_only);
    decision.t_dram_only.push_back(in.t_dram_only);
    decision.estimated_accesses.push_back(in.total_accesses);
    task_order.push_back(tp.task);
    inputs.push_back(in);
  }

  const std::uint64_t dram_pages =
      ctx.pages().spec().dram_capacity() / ctx.pages().page_bytes();
  GreedyResult greedy;
  bool cache_hit = false;
  {
    MERCH_TRACE_SPAN_VAR(greedy_span, obs::Category::kCore, "core.greedy");
    if (config_.greedy_cache != nullptr) {
      // Warm-start: identical inputs (bitwise) replay the shared cached
      // result — Algorithm 1 is a pure function of them.
      const std::string key = GreedyResultCache::Fingerprint(
          inputs, dram_pages, model_, config_.greedy);
      if (const auto cached = config_.greedy_cache->Find(key)) {
        greedy = *cached;
        cache_hit = true;
      } else {
        greedy =
            RunGreedyAllocation(inputs, dram_pages, model_, config_.greedy);
        config_.greedy_cache->Insert(key, greedy);
      }
    } else {
      greedy = RunGreedyAllocation(inputs, dram_pages, model_, config_.greedy);
    }
    greedy_span.set_arg("rounds", static_cast<std::int64_t>(greedy.rounds));
  }
  MERCH_METRIC_COUNT("merch_core_decisions_total", 1);
  MERCH_METRIC_COUNT("merch_core_greedy_rounds_total",
                     static_cast<std::uint64_t>(greedy.rounds));

  decision.dram_fraction = greedy.dram_fraction;
  decision.predicted_seconds = greedy.predicted_seconds;
  decision.greedy_rounds = greedy.rounds;
  decision.greedy_inputs = inputs;
  decision.dram_capacity_pages = dram_pages;
  decision.greedy_cache_hit = cache_hit;
  decision.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    decision_start)
          .count();
  decisions_.push_back(decision);

  quota_pages_.clear();
  used_pages_.clear();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    quota_pages_[inputs[i].task] = greedy.dram_pages[i];
  }
  // Quota accounting starts from what each task already holds on DRAM.
  for (const sim::TaskProgram& tp : reg.tasks) {
    std::uint64_t used = 0;
    for (std::size_t obj = 0; obj < w.objects.size(); ++obj) {
      if (w.objects[obj].owner == tp.task) {
        used += ctx.pages().object_pages_on(ctx.oracle().handle(obj),
                                            hm::Tier::kDram);
      }
    }
    used_pages_[tp.task] = used;
  }

  if (config_.proactive_placement) {
    ApplyPlacement(ctx, reg, greedy, task_order);
  }
}

void MerchandiserPolicy::ApplyPlacement(sim::SimContext& ctx,
                                        const sim::Region& region,
                                        const GreedyResult& greedy,
                                        const std::vector<TaskId>& task_order) {
  const sim::Workload& w = ctx.workload();
  const std::uint64_t dram_pages =
      ctx.pages().spec().dram_capacity() / ctx.pages().page_bytes();

  // Spend each task's page budget on its densest objects first (estimated
  // accesses per page, from Eq. 1). This is what quota-capped hot-page
  // migration converges to, decided up front: the profiler promotes the
  // hottest sampled pages and the quota stops it, so dense objects win.
  // Tasks are served in predicted-longest-first order so the critical task
  // claims contended shared objects.
  std::vector<std::size_t> order(task_order.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return greedy.predicted_seconds[a] > greedy.predicted_seconds[b];
  });

  std::vector<double> raw_target(w.objects.size(), 0.0);
  for (const std::size_t ti : order) {
    const TaskId task = task_order[ti];
    double total_est = 0;
    const auto cands = BuildCandidates(ctx, region, task, &total_est);
    // Serve this task's granted DRAM-access share r_i by walking its
    // objects densest-first until the *estimated access mass* placed on
    // DRAM reaches r_i * total; within an object, hottest pages first
    // (heat-aware page count). This delivers the benefit Algorithm 1's
    // model assumed while spending the page budget its curve predicted.
    double access_budget = greedy.dram_fraction[ti] * total_est;
    for (const PlacementCandidate& c : cands) {
      if (access_budget <= 0) break;
      const double need = std::min(access_budget, c.est_accesses);
      const double q = need / std::max(1.0, c.est_accesses);
      const trace::HeatProfile& heat = w.objects[c.object].heat;
      const auto npages = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(c.pages));
      const double pages =
          static_cast<double>(heat.PagesForFraction(q, npages));
      raw_target[c.object] = std::max(raw_target[c.object], pages);
      access_budget -= need;
    }
  }
  double total_target = 0;
  for (const double t : raw_target) total_target += t;

  // Capacity clamp (leave 2% headroom for interval migrations).
  const double cap = 0.98 * static_cast<double>(dram_pages);
  const double scale = total_target > cap ? cap / total_target : 1.0;
  for (std::size_t obj = 0; obj < w.objects.size(); ++obj) {
    object_target_pages_[obj] =
        static_cast<std::uint64_t>(raw_target[obj] * scale);
  }

  // Demote excess first (frees DRAM), then promote deficits. A 20%
  // hysteresis band on both sides avoids re-migrating near-identical
  // placements between consecutive instances (migration bandwidth is the
  // scarce resource this policy competes with the application for).
  for (std::size_t obj = 0; obj < w.objects.size(); ++obj) {
    const ObjectId handle = ctx.oracle().handle(obj);
    const std::uint64_t cur =
        ctx.pages().object_pages_on(handle, hm::Tier::kDram);
    const std::uint64_t target = object_target_pages_[obj];
    const std::uint64_t slack = ctx.pages().extent(handle).num_pages / 5;
    if (cur > target + slack) {
      ctx.migration().DemoteColdest(handle, cur - target);
    }
  }
  for (std::size_t obj = 0; obj < w.objects.size(); ++obj) {
    const ObjectId handle = ctx.oracle().handle(obj);
    const std::uint64_t cur =
        ctx.pages().object_pages_on(handle, hm::Tier::kDram);
    const std::uint64_t target = object_target_pages_[obj];
    const std::uint64_t slack = ctx.pages().extent(handle).num_pages / 5;
    if (cur + slack < target) {
      ctx.migration().MigrateHottest(handle, target - cur, hm::Tier::kDram);
    }
  }

  // Seed quota usage with the bulk placement.
  for (const auto& [task, quota] : quota_pages_) {
    (void)quota;
    std::uint64_t used = 0;
    for (std::size_t obj = 0; obj < w.objects.size(); ++obj) {
      if (w.objects[obj].owner == task) {
        used += ctx.pages().object_pages_on(ctx.oracle().handle(obj),
                                            hm::Tier::kDram);
      }
    }
    used_pages_[task] = used;
  }
  (void)region;
}

void MerchandiserPolicy::OnRegionEnd(sim::SimContext& ctx,
                                     std::size_t region) {
  const sim::Workload& w = ctx.workload();
  if (region == 0) {
    base_collected_ = true;
    // Bind base sizes/counts into the estimators.
    for (auto& [key, est] : alpha_) {
      const auto it = base_accesses_.find(key);
      if (it != base_accesses_.end() && !est.has_base()) {
        est.SetBase(static_cast<double>(base_sizes_[key.object]), it->second);
      }
    }
    ++alpha_version_;
    return;
  }
  // Runtime alpha refinement from PEBS measurements of this instance
  // (input-dependent stencil / random / unknown patterns).
  const sim::RegionStats& stats = ctx.history().back();
  const std::vector<std::uint64_t>& sizes =
      w.regions[region].active_bytes.empty() ? base_sizes_
                                             : w.regions[region].active_bytes;
  bool refined = false;
  for (const sim::TaskStats& ts : stats.tasks) {
    for (std::size_t obj = 0; obj < ts.object_mm_accesses.size(); ++obj) {
      const auto it = alpha_.find(TaskObjectKey{ts.task, obj});
      if (it == alpha_.end() || !it->second.refines_at_runtime()) continue;
      const double measured = pebs_.Estimate(ts.object_mm_accesses[obj]);
      it->second.Refine(static_cast<double>(sizes[obj]), measured);
      refined = true;
    }
  }
  // Refinement changes Eq. 1 estimates — invalidate everything derived
  // from them.
  if (refined) ++alpha_version_;
}

double MerchandiserPolicy::AverageAlpha() const {
  double sum = 0;
  std::size_t count = 0;
  for (const auto& [key, est] : alpha_) {
    sum += est.alpha();
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 1.0;
}

}  // namespace merch::core
