#include "core/lowering.h"

#include <map>

#include "core/pattern_classifier.h"

namespace merch::core {

sim::Kernel LowerLoop(
    const LoopNest& loop,
    const std::vector<trace::AccessPattern>& object_patterns) {
  sim::Kernel kernel;
  kernel.name = loop.name;
  kernel.instructions = static_cast<std::uint64_t>(
      loop.instructions_per_iteration * static_cast<double>(loop.trip_count));
  kernel.branch_fraction = loop.branch_fraction;
  kernel.vector_fraction = loop.vector_fraction;

  // Group refs per object: one ObjectAccess per referenced object.
  struct Acc {
    double reads = 0, writes = 0;
    std::uint32_t element_bytes = 8;
    std::int64_t stride = 1;
  };
  std::map<std::size_t, Acc> per_object;
  for (const ArrayRef& ref : loop.refs) {
    const double count =
        static_cast<double>(loop.trip_count) * ref.accesses_per_iteration;
    Acc& acc = per_object[ref.object];
    (ref.is_write ? acc.writes : acc.reads) += count;
    acc.element_bytes = ref.element_bytes;
    if (ref.subscript.kind == Subscript::Kind::kAffine) {
      acc.stride = std::max<std::int64_t>(1, std::abs(ref.subscript.stride));
    }
    // The index array of an indirect ref is read once per iteration too.
    if (ref.subscript.kind == Subscript::Kind::kIndirect &&
        ref.subscript.index_object != SIZE_MAX) {
      Acc& idx = per_object[ref.subscript.index_object];
      idx.reads += count;
      idx.element_bytes = 4;  // index arrays are int32 throughout
    }
  }

  for (const auto& [object, acc] : per_object) {
    trace::ObjectAccess a;
    a.object = static_cast<ObjectId>(object);
    a.pattern = object < object_patterns.size()
                    ? object_patterns[object]
                    : ClassifyObjectInLoop(loop, object);
    a.program_accesses =
        static_cast<std::uint64_t>(acc.reads + acc.writes);
    a.element_bytes = acc.element_bytes;
    a.stride_elements = static_cast<std::uint32_t>(acc.stride);
    const double total = acc.reads + acc.writes;
    a.read_fraction = total > 0 ? acc.reads / total : 1.0;
    if (a.program_accesses > 0) kernel.accesses.push_back(a);
  }
  return kernel;
}

std::vector<sim::Kernel> LowerTask(const TaskIr& task,
                                   std::size_t num_objects) {
  const auto patterns = ClassifyTask(task, num_objects);
  std::vector<sim::Kernel> kernels;
  kernels.reserve(task.loops.size());
  for (const LoopNest& loop : task.loops) {
    kernels.push_back(LowerLoop(loop, patterns));
  }
  return kernels;
}

}  // namespace merch::core
