// The Merchandiser runtime (paper Sections 3-6) as a simulator placement
// policy.
//
// Lifecycle across task instances (= workload regions):
//   Region 0 — the *base input*. The runtime behaves like a conventional
//   hot-page manager while collecting task information: object-level
//   access counts attributed to tasks (PEBS-style sampling), per-task
//   PMCs, and basic-block execution counts (all "online collection of task
//   information", Section 5.3).
//   Regions 1..N — *new inputs*. Before the tasks run, the runtime
//   (1) estimates per-object access counts via Eq. 1 with per-pattern
//   alpha, (2) predicts PM-only / DRAM-only times via the Section 5.2
//   basic-block predictor, (3) runs Algorithm 1 to decide each task's
//   DRAM-access share, and (4) migrates pages toward those targets. During
//   execution, interval-driven hot-page migration continues but is capped
//   by each task's page quota (Section 6, "Page migration"). After each
//   instance, PEBS measurements refine alpha for input-dependent patterns.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/alpha.h"
#include "core/correlation.h"
#include "core/greedy.h"
#include "core/homogeneous.h"
#include "core/perf_model.h"
#include "profiler/pebs.h"
#include "profiler/pte_scan.h"
#include "profiler/thermostat.h"
#include "sim/policy.h"
#include "trace/heat.h"

namespace merch::core {

struct MerchandiserConfig {
  profiler::PteScanProfiler::Config pte{};
  double pebs_period = 2000;
  GreedyConfig greedy{};
  /// Hot pages migrated per interval (MemoryOptimizer-compatible batch).
  std::size_t interval_migration_pages = 512;
  /// Paper-faithful Merchandiser (Section 6) keeps MemoryOptimizer's
  /// sampling-driven migration and only *caps* it with the Algorithm 1
  /// quotas. When true, the runtime additionally bulk-migrates each
  /// object's pages toward its quota at instance start — an extension
  /// evaluated by bench/ablation_greedy (helpful for single-sweep streams,
  /// at the cost of burstier migration traffic).
  bool proactive_placement = true;
  /// Decision-path memoization (perf only; results are bit-identical with
  /// it on or off — every cached value is a pure function of unchanged
  /// inputs): per-region candidate/Eq.1 memo shared between the decision
  /// and ApplyPlacement, simulation-lifetime quartile page-curve cache
  /// (heat profiles and extents are static), and cross-region reuse keyed
  /// on input sizes + an alpha version bumped whenever refinement changes
  /// any estimator. Escape hatch: MERCH_POLICY_MEMO=0 (read once at
  /// construction) disables all of it.
  bool decision_memo = true;
  /// Optional shared whole-run greedy memo (see GreedyResultCache). When
  /// set, identical Algorithm 1 inputs replay the cached result instead of
  /// re-running — sweeps over ratio grids warm-start from each other. Not
  /// owned; must outlive the policy.
  GreedyResultCache* greedy_cache = nullptr;
  std::uint64_t seed = 99;
};

/// Record of one instance's decisions, for evaluation (Table 4 compares
/// these predictions against measured times).
struct InstanceDecision {
  std::size_t region = 0;
  std::vector<TaskId> tasks;
  std::vector<double> dram_fraction;     // Algorithm 1 output r_i
  std::vector<double> predicted_seconds; // Eq. 2 prediction at r_i
  std::vector<double> t_pm_only;         // Section 5.2 predictions
  std::vector<double> t_dram_only;
  std::vector<double> estimated_accesses;  // Eq. 1 totals
  int greedy_rounds = 0;
  /// The exact Algorithm 1 inputs and capacity this decision ran with —
  /// lets bench/policy_speed replay the greedy allocation standalone and
  /// check bit-identity against the recorded outputs.
  std::vector<GreedyTaskInput> greedy_inputs;
  std::uint64_t dram_capacity_pages = 0;
  /// Wall-clock seconds spent on the decision math (Eq. 1 estimation,
  /// homogeneous bounds, Algorithm 1) — excludes ApplyPlacement's page
  /// migrations, which are engine work.
  double decision_seconds = 0;
  /// True when the greedy result came from a shared GreedyResultCache.
  bool greedy_cache_hit = false;
};

class MerchandiserPolicy final : public sim::PlacementPolicy {
 public:
  MerchandiserPolicy(const CorrelationFunction* correlation,
                     HomogeneousPredictor homogeneous,
                     MerchandiserConfig config = {});

  std::string name() const override { return "Merchandiser"; }

  void OnSimulationStart(sim::SimContext& ctx) override;
  void OnRegionStart(sim::SimContext& ctx, std::size_t region) override;
  void OnInterval(sim::SimContext& ctx) override;
  void OnRegionEnd(sim::SimContext& ctx, std::size_t region) override;

  /// Per-instance decisions made so far (instances after the base input).
  const std::vector<InstanceDecision>& decisions() const { return decisions_; }

  /// Average refined alpha across this application's refinable objects —
  /// the per-application alpha values reported in Section 7.3.
  double AverageAlpha() const;

 private:
  struct TaskObjectKey {
    TaskId task;
    std::size_t object;
    bool operator<(const TaskObjectKey& o) const {
      return task != o.task ? task < o.task : object < o.object;
    }
  };

  /// Object-level pattern for a task, read from the task's kernels in the
  /// base region (these descriptors were lowered from the kernel IR by the
  /// classifier, so this equals consuming the static-analysis output).
  void BuildAlphaEstimators(const sim::Workload& workload);

  /// One candidate object for a task's DRAM budget, densest first.
  struct PlacementCandidate {
    std::size_t object = 0;
    double est_accesses = 0;
    double pages = 0;       // full object pages (placement granularity)
    /// Capacity-accounting pages: shared objects are charged to each task
    /// in proportion to its access share, so summing costs across tasks
    /// matches physical DRAM consumption.
    double pages_cost = 0;
    /// Per-access DRAM benefit (ns gained per access) — the knapsack item
    /// value; ranks candidates together with access density.
    double benefit_per_access = 1.0;
  };
  /// Density-ordered candidates + Eq.1 access totals for `task` under the
  /// instance's input sizes. Also used to build the greedy page-cost curve.
  std::vector<PlacementCandidate> BuildCandidates(
      sim::SimContext& ctx, const sim::Region& region, TaskId task,
      double* total_est) ;

  /// heat.PagesForFraction(kCurveQuartiles[qi]) for the object's full
  /// extent, through the lifetime quartile cache when memoization is on.
  double QuartilePages(const trace::HeatProfile& heat, std::size_t object,
                       int quartile_index, std::uint64_t npages);

  /// Per-object base-access totals (cached: base_accesses_ is frozen once
  /// the base instance ends, before any caller runs).
  const std::vector<double>& ObjectBaseTotals(const sim::Workload& w);

  /// Bulk placement toward the greedy targets at instance start.
  void ApplyPlacement(sim::SimContext& ctx, const sim::Region& region,
                      const GreedyResult& greedy,
                      const std::vector<TaskId>& task_order);

  const CorrelationFunction* correlation_;
  HomogeneousPredictor homogeneous_;
  PerformanceModel model_;
  MerchandiserConfig config_;
  profiler::PteScanProfiler pte_;
  profiler::ThermostatSampler thermostat_;
  profiler::PebsSampler pebs_;

  std::map<TaskObjectKey, AlphaEstimator> alpha_;
  /// Base-input profiled accesses per (task, object).
  std::map<TaskObjectKey, double> base_accesses_;
  std::vector<std::uint64_t> base_sizes_;
  bool base_collected_ = false;

  /// Page quota per task for the current instance (Algorithm 1 output).
  std::map<TaskId, std::uint64_t> quota_pages_;
  std::map<TaskId, std::uint64_t> used_pages_;
  /// Per-object DRAM page target for the current instance.
  std::vector<std::uint64_t> object_target_pages_;

  std::vector<InstanceDecision> decisions_;
  std::uint64_t interval_counter_ = 0;

  // --- Decision-path memoization (bit-identical; MERCH_POLICY_MEMO). ---
  /// Resolved once at construction from config_.decision_memo and the
  /// MERCH_POLICY_MEMO environment toggle.
  bool memo_enabled_ = true;
  /// Bumped whenever alpha refinement (or base binding) changes any
  /// estimator — invalidates everything derived from Eq. 1.
  std::uint64_t alpha_version_ = 0;
  /// Per-object base-access totals (static once the base instance ends).
  std::vector<double> object_base_total_;
  bool object_base_total_valid_ = false;
  /// Lifetime cache of heat.PagesForFraction at the four curve quartiles
  /// per object (heat profiles and extents never change); < 0 = unfilled.
  std::vector<double> quartile_pages_;
  /// Candidate/Eq.1 memo: one entry per task, valid for a single
  /// (region, sizes, alpha_version) combination recorded alongside.
  struct CandidateMemo {
    std::vector<PlacementCandidate> cands;
    double total_est = 0;
  };
  std::map<TaskId, CandidateMemo> candidate_memo_;
  const sim::Region* candidate_memo_region_ = nullptr;
  std::uint64_t candidate_memo_alpha_version_ = 0;
};

}  // namespace merch::core
