// Lowers the kernel IR into simulator access descriptors, using the
// classifier's object-level pattern labels. This is the bridge between
// "what the application code looks like" (TaskIr) and "what the simulator
// executes" (sim::Kernel) — and it guarantees the patterns the simulator
// exercises are exactly the patterns Merchandiser's static analysis saw.
#pragma once

#include <vector>

#include "core/kernel_ir.h"
#include "sim/workload.h"

namespace merch::core {

/// Lower one loop nest. `object_patterns` is ClassifyTask's output for the
/// enclosing task (index = workload object).
sim::Kernel LowerLoop(const LoopNest& loop,
                      const std::vector<trace::AccessPattern>& object_patterns);

/// Lower a task's full loop sequence into kernels.
std::vector<sim::Kernel> LowerTask(const TaskIr& task,
                                   std::size_t num_objects);

}  // namespace merch::core
