#include "core/trace_classifier.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace merch::core {

TraceClassification ClassifyTrace(std::span<const std::uint64_t> addresses,
                                  const TraceClassifierConfig& config) {
  TraceClassification out;
  if (addresses.size() < 8) return out;

  const auto elem = static_cast<std::int64_t>(config.element_bytes);
  // Element-granular deltas between successive accesses.
  std::map<std::int64_t, std::size_t> delta_counts;
  std::size_t in_neighborhood = 0;
  const std::size_t n_deltas = addresses.size() - 1;
  for (std::size_t i = 1; i < addresses.size(); ++i) {
    const auto delta =
        (static_cast<std::int64_t>(addresses[i]) -
         static_cast<std::int64_t>(addresses[i - 1])) /
        elem;
    ++delta_counts[delta];
    if (std::abs(delta) <= config.stencil_radius) ++in_neighborhood;
  }

  // Dominant delta.
  std::int64_t dominant = 0;
  std::size_t dominant_count = 0;
  for (const auto& [delta, count] : delta_counts) {
    if (count > dominant_count) {
      dominant = delta;
      dominant_count = count;
    }
  }
  const double agreement =
      static_cast<double>(dominant_count) / static_cast<double>(n_deltas);

  if (agreement >= config.stride_agreement && dominant != 0) {
    out.stride = std::abs(dominant);
    out.confidence = agreement;
    out.pattern = out.stride == 1 ? trace::AccessPattern::kStream
                                  : trace::AccessPattern::kStrided;
    return out;
  }

  // Stencil: the trace hops back and forth within a small neighborhood
  // while drifting forward (A[i-1], A[i], A[i+1], then i+1...). Require
  // most deltas to be small *and* at least two distinct delta values
  // (otherwise a noisy stream would qualify).
  const double neighborhood_fraction =
      static_cast<double>(in_neighborhood) / static_cast<double>(n_deltas);
  if (neighborhood_fraction >= config.stencil_agreement &&
      delta_counts.size() >= 2) {
    out.pattern = trace::AccessPattern::kStencil;
    out.confidence = neighborhood_fraction;
    return out;
  }

  out.pattern = trace::AccessPattern::kRandom;
  out.confidence = 1.0 - std::max(agreement, neighborhood_fraction);
  return out;
}

}  // namespace merch::core
