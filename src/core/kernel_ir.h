// Miniature loop-nest IR — the input to the Spindle-like static analysis.
//
// The paper compiles applications with Spindle (LLVM) to extract, per data
// object, the structural information of memory access instructions
// (Section 4). Our applications are simulated rather than compiled, so
// they describe their kernels in this IR; the classifier derives the same
// object-level pattern labels Spindle would (Table 1), and the workload
// builder lowers the IR to simulator access descriptors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace merch::core {

/// How one array reference's subscript is formed from the loop induction
/// variable.
struct Subscript {
  enum class Kind {
    kAffine,       // A[i*stride + base]
    kNeighborhood, // A[i+base+o] for a set of offsets (stencils)
    kIndirect,     // A[B[i]] — gather/scatter through an index object
    kOpaque,       // not analysable statically (function of runtime data)
  };
  Kind kind = Kind::kAffine;
  std::int64_t stride = 1;            // kAffine
  /// Starting element of the sweep (kAffine / kNeighborhood). Lets tasks
  /// express disjoint partitions of a shared object ("task t writes
  /// elements [base, base+trips)"), which the inter-task dependence
  /// analysis needs to prove slices race-free.
  std::int64_t base = 0;
  std::vector<std::int64_t> offsets;  // kNeighborhood
  std::size_t index_object = SIZE_MAX;  // kIndirect: the index array
};

/// One memory reference in the loop body.
struct ArrayRef {
  std::size_t object = SIZE_MAX;  // workload object index
  Subscript subscript;
  bool is_write = false;
  std::uint32_t element_bytes = 8;
  /// Executions of this reference per loop iteration (inner loops over
  /// variable extents, e.g. B-row scans inside SpGEMM, average to a
  /// fractional rate).
  double accesses_per_iteration = 1.0;
};

/// A counted loop with straight-line body.
struct LoopNest {
  std::string name;
  std::uint64_t trip_count = 0;
  std::vector<ArrayRef> refs;
  /// Non-memory instructions per iteration.
  double instructions_per_iteration = 4.0;
  double branch_fraction = 0.05;
  double vector_fraction = 0.2;
};

/// A task's code: a sequence of loop nests (the "basic blocks" whose
/// execution times Section 5.2 measures offline).
struct TaskIr {
  TaskId task = 0;
  std::vector<LoopNest> loops;
};

}  // namespace merch::core
