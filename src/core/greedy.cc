#include "core/greedy.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <queue>

#include "common/env.h"
#include "obs/metrics.h"

namespace merch::core {
namespace {

std::uint64_t MapToPages(double r, const GreedyTaskInput& task) {
  if (task.pages_for_access_fraction.empty()) {
    // Paper's even-distribution assumption (Algorithm 1, line 18).
    return static_cast<std::uint64_t>(
        std::ceil(r * static_cast<double>(task.footprint_pages)));
  }
  // Piecewise-linear interpolation of the density-ordered cost curve.
  const auto& curve = task.pages_for_access_fraction;
  double prev_f = 0, prev_p = 0;
  for (const auto& [f, p] : curve) {
    if (r <= f) {
      const double t = f > prev_f ? (r - prev_f) / (f - prev_f) : 1.0;
      return static_cast<std::uint64_t>(std::ceil(prev_p + t * (p - prev_p)));
    }
    prev_f = f;
    prev_p = p;
  }
  return static_cast<std::uint64_t>(std::ceil(prev_p));
}

/// The pre-PR decision loop: per-round full rescans and one scalar model
/// evaluation per probe. Kept verbatim as the reference implementation;
/// RunGreedyHeap below must match it bit for bit
/// (tests/decision_equiv_test.cc).
GreedyResult RunGreedyRescan(std::span<const GreedyTaskInput> tasks,
                             std::uint64_t dram_capacity_pages,
                             const PerformanceModel& model,
                             GreedyConfig config) {
  const std::size_t n = tasks.size();
  GreedyResult result;
  result.dram_fraction.assign(n, 0.0);
  result.dram_pages.assign(n, 0);
  result.predicted_seconds.resize(n);
  if (n == 0) return result;

  // Lines 6-8: initialise allocations to zero, D' to the PM-only times.
  for (std::size_t i = 0; i < n; ++i) {
    result.predicted_seconds[i] = tasks[i].t_pm_only;
  }

  auto pages_used = [&]() {
    std::uint64_t sum = 0;
    for (const std::uint64_t p : result.dram_pages) sum += p;
    return sum;
  };

  for (int round = 0; round < config.max_rounds; ++round) {
    result.rounds = round + 1;

    // Line 10: longest task. Line 11: second-longest execution time.
    std::size_t longest = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (result.predicted_seconds[i] > result.predicted_seconds[longest]) {
        longest = i;
      }
    }
    double second = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != longest) second = std::max(second, result.predicted_seconds[i]);
    }
    if (n == 1) second = tasks[0].t_dram_only;  // single task: run to the bound

    if (result.dram_fraction[longest] >= 1.0 - 1e-9) {
      // The critical task is fully DRAM-resident; no placement decision can
      // shorten the makespan further.
      break;
    }

    // Lines 13-16: grow the longest task's DRAM accesses in `step`
    // increments until it is predicted to dip below the second-longest.
    double r = result.dram_fraction[longest];
    double predicted = result.predicted_seconds[longest];
    do {
      r = std::min(1.0, r + config.step);
      predicted = model.PredictHybrid(tasks[longest].t_pm_only,
                                      tasks[longest].t_dram_only,
                                      tasks[longest].pmcs, r);
    } while (predicted > second && r < 1.0 - 1e-9);

    // Lines 17-18: commit and map to a page budget.
    const std::uint64_t new_pages = MapToPages(r, tasks[longest]);

    // Line 19 (capacity guard): if this allocation overflows DRAM, claw the
    // increase back one step at a time until it fits, then stop.
    std::uint64_t others = pages_used() - result.dram_pages[longest];
    double fitted_r = r;
    std::uint64_t fitted_pages = new_pages;
    while (fitted_r > result.dram_fraction[longest] &&
           others + fitted_pages > dram_capacity_pages) {
      fitted_r = std::max(result.dram_fraction[longest], fitted_r - config.step);
      fitted_pages = MapToPages(fitted_r, tasks[longest]);
    }
    const bool capacity_hit = fitted_r < r - 1e-12;

    if (fitted_r <= result.dram_fraction[longest] + 1e-12 && capacity_hit) {
      break;  // no headroom at all
    }
    result.dram_fraction[longest] = fitted_r;
    result.dram_pages[longest] = fitted_pages;
    result.predicted_seconds[longest] = model.PredictHybrid(
        tasks[longest].t_pm_only, tasks[longest].t_dram_only,
        tasks[longest].pmcs, fitted_r);
    if (capacity_hit) break;

    bool all_full = true;
    for (const double rf : result.dram_fraction) {
      if (rf < 1.0 - 1e-9) {
        all_full = false;
        break;
      }
    }
    if (all_full) break;
  }
  return result;
}

// ------------------------------------------------------------ heap path

/// Heap entry with lazy deletion: an entry is live iff its version equals
/// the task's current version. The comparator totally orders entries as
/// the rescan's strict-`>` argmax does: larger predicted time wins, equal
/// times go to the lower index.
struct HeapEntry {
  double seconds = 0;
  std::size_t index = 0;
  std::uint64_t version = 0;
};

struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.seconds != b.seconds) return a.seconds < b.seconds;
    return a.index > b.index;
  }
};

/// Per-task evaluation state: the correlation function specialized on the
/// task's PMCs (CorrelationProfile — tree ensembles collapse to a
/// piecewise-constant function of r, so each probe costs a binary search
/// plus at most one lazy interval fill). Predict replicates PredictHybrid
/// operation for operation — same clamp, same r >= 1 shortcut, shared
/// Combine — so it is bitwise equal to the rescan's scalar call. Models
/// without a specialization (MERCH_FLAT_FOREST=0) fall back to scalar
/// PredictHybrid behind an exact-bits r -> prediction memo, which cannot
/// change results — the same r always maps to the same double.
class TaskEvaluator {
 public:
  TaskEvaluator(const GreedyTaskInput& task, const PerformanceModel& model)
      : task_(&task), model_(&model),
        profile_(model.correlation().MakeProfile(task.pmcs)) {
    if (!profile_.specialized()) memo_.reserve(64);
  }

  double Predict(double r) {
    if (profile_.specialized()) {
      const double rc = std::clamp(r, 0.0, 1.0);
      if (rc >= 1.0) return task_->t_dram_only;
      return PerformanceModel::Combine(task_->t_pm_only, task_->t_dram_only,
                                       rc, profile_.Evaluate(rc));
    }
    const std::uint64_t key = std::bit_cast<std::uint64_t>(r);
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const double v = model_->PredictHybrid(task_->t_pm_only,
                                           task_->t_dram_only, task_->pmcs, r);
    memo_.emplace(key, v);
    return v;
  }

 private:
  const GreedyTaskInput* task_;
  const PerformanceModel* model_;
  CorrelationProfile profile_;
  std::unordered_map<std::uint64_t, double> memo_;  // fallback path only
};

/// Incremental Algorithm 1. Structure per round mirrors the rescan
/// exactly — same probe recurrence (r = min(1, r + step) by repeated
/// addition, so later rounds' grids bitwise extend earlier ones), same
/// claw-back, same break conditions — with O(log n) longest/second
/// selection, a running page total, and chunk-batched model probes.
GreedyResult RunGreedyHeap(std::span<const GreedyTaskInput> tasks,
                           std::uint64_t dram_capacity_pages,
                           const PerformanceModel& model,
                           GreedyConfig config) {
  const std::size_t n = tasks.size();
  GreedyResult result;
  result.dram_fraction.assign(n, 0.0);
  result.dram_pages.assign(n, 0);
  result.predicted_seconds.resize(n);
  if (n == 0) return result;

  // Evaluators are built lazily — a task that never becomes the longest
  // never pays for its feature prefix or memo.
  std::vector<std::unique_ptr<TaskEvaluator>> evals(n);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  std::vector<std::uint64_t> version(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    result.predicted_seconds[i] = tasks[i].t_pm_only;
    heap.push(HeapEntry{result.predicted_seconds[i], i, 0});
  }
  std::uint64_t total_pages = 0;
  std::size_t full_count = 0;  // tasks with dram_fraction >= 1 - 1e-9
  std::uint64_t heap_pops = 0;

  for (int round = 0; round < config.max_rounds; ++round) {
    result.rounds = round + 1;

    // Longest task: pop past dead entries to the live maximum.
    HeapEntry top;
    for (;;) {
      top = heap.top();
      heap.pop();
      ++heap_pops;
      if (top.version == version[top.index]) break;
    }
    const std::size_t longest = top.index;

    // Second-longest: the next live entry (the rescan's scan starts its
    // max at 0, so clamp from below).
    double second = 0;
    if (n == 1) {
      second = tasks[0].t_dram_only;  // single task: run to the bound
    } else {
      while (!heap.empty() &&
             heap.top().version != version[heap.top().index]) {
        heap.pop();
        ++heap_pops;
      }
      if (!heap.empty()) second = std::max(0.0, heap.top().seconds);
    }

    if (result.dram_fraction[longest] >= 1.0 - 1e-9) break;

    // The rescan's probe recurrence, verbatim (r = min(1, r + step) by
    // repeated addition, so later rounds' probes bitwise extend earlier
    // ones); each probe is a specialized-profile lookup instead of a full
    // model evaluation.
    double r = result.dram_fraction[longest];
    double predicted = result.predicted_seconds[longest];
    if (!evals[longest]) {
      evals[longest] =
          std::make_unique<TaskEvaluator>(tasks[longest], model);
    }
    TaskEvaluator& ev = *evals[longest];
    do {
      r = std::min(1.0, r + config.step);
      predicted = ev.Predict(r);
    } while (predicted > second && r < 1.0 - 1e-9);
    (void)predicted;

    const std::uint64_t new_pages = MapToPages(r, tasks[longest]);

    const std::uint64_t others = total_pages - result.dram_pages[longest];
    double fitted_r = r;
    std::uint64_t fitted_pages = new_pages;
    while (fitted_r > result.dram_fraction[longest] &&
           others + fitted_pages > dram_capacity_pages) {
      fitted_r =
          std::max(result.dram_fraction[longest], fitted_r - config.step);
      fitted_pages = MapToPages(fitted_r, tasks[longest]);
    }
    const bool capacity_hit = fitted_r < r - 1e-12;

    if (fitted_r <= result.dram_fraction[longest] + 1e-12 && capacity_hit) {
      break;  // no headroom at all
    }
    result.dram_fraction[longest] = fitted_r;
    total_pages -= result.dram_pages[longest];
    total_pages += fitted_pages;
    result.dram_pages[longest] = fitted_pages;
    // Commit re-evaluation hits the profile's interval cache when the
    // commit point is the last probe (the common case).
    const double committed = ev.Predict(fitted_r);
    result.predicted_seconds[longest] = committed;
    if (fitted_r >= 1.0 - 1e-9) ++full_count;
    if (capacity_hit) break;

    heap.push(HeapEntry{committed, longest, ++version[longest]});
    if (full_count == n) break;
  }
  MERCH_METRIC_COUNT("merch_core_greedy_heap_pops_total", heap_pops);
  return result;
}

}  // namespace

GreedyResult RunGreedyAllocation(std::span<const GreedyTaskInput> tasks,
                                 std::uint64_t dram_capacity_pages,
                                 const PerformanceModel& model,
                                 GreedyConfig config) {
  if (common::EnvToggle("MERCH_GREEDY_HEAP", config.incremental)) {
    return RunGreedyHeap(tasks, dram_capacity_pages, model, config);
  }
  return RunGreedyRescan(tasks, dram_capacity_pages, model, config);
}

// ---------------------------------------------------- GreedyResultCache

namespace {

void AppendU64(std::string* s, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    s->push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
}

void AppendDouble(std::string* s, double d) {
  AppendU64(s, std::bit_cast<std::uint64_t>(d));
}

}  // namespace

std::string GreedyResultCache::Fingerprint(
    std::span<const GreedyTaskInput> tasks, std::uint64_t dram_capacity_pages,
    const PerformanceModel& model, const GreedyConfig& config) {
  std::string key;
  key.reserve(64 + tasks.size() * 128);
  // Model identity: the correlation function object the predictions come
  // from (owners keep trained systems alive for the cache's lifetime).
  AppendU64(&key,
            static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(&model.correlation())));
  AppendU64(&key, dram_capacity_pages);
  AppendDouble(&key, config.step);
  AppendU64(&key, static_cast<std::uint64_t>(config.max_rounds));
  AppendU64(&key, tasks.size());
  for (const GreedyTaskInput& t : tasks) {
    AppendU64(&key, static_cast<std::uint64_t>(t.task));
    AppendDouble(&key, t.t_pm_only);
    AppendDouble(&key, t.t_dram_only);
    AppendDouble(&key, t.total_accesses);
    AppendU64(&key, t.footprint_pages);
    for (const double e : t.pmcs) AppendDouble(&key, e);
    AppendU64(&key, t.pages_for_access_fraction.size());
    for (const auto& [f, p] : t.pages_for_access_fraction) {
      AppendDouble(&key, f);
      AppendDouble(&key, p);
    }
  }
  return key;
}

std::shared_ptr<const GreedyResult> GreedyResultCache::Find(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void GreedyResultCache::Insert(const std::string& key, GreedyResult result) {
  auto value = std::make_shared<const GreedyResult>(std::move(result));
  std::lock_guard<std::mutex> lock(mu_);
  map_.emplace(key, std::move(value));
}

std::uint64_t GreedyResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t GreedyResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace merch::core
