#include "core/greedy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace merch::core {
namespace {

std::uint64_t MapToPages(double r, const GreedyTaskInput& task) {
  if (task.pages_for_access_fraction.empty()) {
    // Paper's even-distribution assumption (Algorithm 1, line 18).
    return static_cast<std::uint64_t>(
        std::ceil(r * static_cast<double>(task.footprint_pages)));
  }
  // Piecewise-linear interpolation of the density-ordered cost curve.
  const auto& curve = task.pages_for_access_fraction;
  double prev_f = 0, prev_p = 0;
  for (const auto& [f, p] : curve) {
    if (r <= f) {
      const double t = f > prev_f ? (r - prev_f) / (f - prev_f) : 1.0;
      return static_cast<std::uint64_t>(std::ceil(prev_p + t * (p - prev_p)));
    }
    prev_f = f;
    prev_p = p;
  }
  return static_cast<std::uint64_t>(std::ceil(prev_p));
}

}  // namespace

GreedyResult RunGreedyAllocation(std::span<const GreedyTaskInput> tasks,
                                 std::uint64_t dram_capacity_pages,
                                 const PerformanceModel& model,
                                 GreedyConfig config) {
  const std::size_t n = tasks.size();
  GreedyResult result;
  result.dram_fraction.assign(n, 0.0);
  result.dram_pages.assign(n, 0);
  result.predicted_seconds.resize(n);
  if (n == 0) return result;

  // Lines 6-8: initialise allocations to zero, D' to the PM-only times.
  for (std::size_t i = 0; i < n; ++i) {
    result.predicted_seconds[i] = tasks[i].t_pm_only;
  }

  auto pages_used = [&]() {
    std::uint64_t sum = 0;
    for (const std::uint64_t p : result.dram_pages) sum += p;
    return sum;
  };

  for (int round = 0; round < config.max_rounds; ++round) {
    result.rounds = round + 1;

    // Line 10: longest task. Line 11: second-longest execution time.
    std::size_t longest = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (result.predicted_seconds[i] > result.predicted_seconds[longest]) {
        longest = i;
      }
    }
    double second = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != longest) second = std::max(second, result.predicted_seconds[i]);
    }
    if (n == 1) second = tasks[0].t_dram_only;  // single task: run to the bound

    if (result.dram_fraction[longest] >= 1.0 - 1e-9) {
      // The critical task is fully DRAM-resident; no placement decision can
      // shorten the makespan further.
      break;
    }

    // Lines 13-16: grow the longest task's DRAM accesses in `step`
    // increments until it is predicted to dip below the second-longest.
    double r = result.dram_fraction[longest];
    double predicted = result.predicted_seconds[longest];
    do {
      r = std::min(1.0, r + config.step);
      predicted = model.PredictHybrid(tasks[longest].t_pm_only,
                                      tasks[longest].t_dram_only,
                                      tasks[longest].pmcs, r);
    } while (predicted > second && r < 1.0 - 1e-9);

    // Lines 17-18: commit and map to a page budget.
    const std::uint64_t new_pages = MapToPages(r, tasks[longest]);

    // Line 19 (capacity guard): if this allocation overflows DRAM, claw the
    // increase back one step at a time until it fits, then stop.
    std::uint64_t others = pages_used() - result.dram_pages[longest];
    double fitted_r = r;
    std::uint64_t fitted_pages = new_pages;
    while (fitted_r > result.dram_fraction[longest] &&
           others + fitted_pages > dram_capacity_pages) {
      fitted_r = std::max(result.dram_fraction[longest], fitted_r - config.step);
      fitted_pages = MapToPages(fitted_r, tasks[longest]);
    }
    const bool capacity_hit = fitted_r < r - 1e-12;

    if (fitted_r <= result.dram_fraction[longest] + 1e-12 && capacity_hit) {
      break;  // no headroom at all
    }
    result.dram_fraction[longest] = fitted_r;
    result.dram_pages[longest] = fitted_pages;
    result.predicted_seconds[longest] = model.PredictHybrid(
        tasks[longest].t_pm_only, tasks[longest].t_dram_only,
        tasks[longest].pmcs, fitted_r);
    if (capacity_hit) break;

    bool all_full = true;
    for (const double rf : result.dram_fraction) {
      if (rf < 1.0 - 1e-9) {
        all_full = false;
        break;
      }
    }
    if (all_full) break;
  }
  return result;
}

}  // namespace merch::core
