#include "core/alpha.h"

#include <algorithm>
#include <cmath>

#include "cachesim/cpu_cache.h"

namespace merch::core {

double LinearAlpha(std::uint64_t s_base, std::uint64_t s_new,
                   std::uint32_t element_bytes,
                   std::uint32_t stride_elements) {
  if (s_base == 0 || s_new == 0) return 1.0;
  // Unit of one main-memory access: a cache line for dense stepping, one
  // element's line for wide strides (every element lands on its own line).
  const std::uint64_t step =
      static_cast<std::uint64_t>(element_bytes) *
      std::max<std::uint32_t>(1, stride_elements);
  const std::uint64_t unit = std::max<std::uint64_t>(kCacheLineBytes, step);
  // Paper: sizes not divisible by the line size round up to a divisible
  // size. Units touched by each input:
  const std::uint64_t units_base = (s_base + unit - 1) / unit;
  const std::uint64_t units_new = (s_new + unit - 1) / unit;
  // Eq. 1 should produce esti = prof * units_new / units_base; solving
  // esti = S_new / (S_base * alpha) * prof for alpha:
  return (static_cast<double>(s_new) * static_cast<double>(units_base)) /
         (static_cast<double>(s_base) * static_cast<double>(units_new));
}

double StencilAlphaOffline(std::uint32_t element_bytes) {
  // Microbenchmark: sweep a 7-point-style stencil over two sizes, compare
  // program-level scaling to counter-measured main-memory scaling.
  const cachesim::CpuCacheSpec cache = cachesim::CpuCacheSpec::PaperXeon();
  trace::ObjectAccess access;
  access.pattern = trace::AccessPattern::kStencil;
  access.element_bytes = element_bytes;

  const std::uint64_t s_base = 256 * MiB;
  const std::uint64_t s_new = 512 * MiB;
  const double prog_base = static_cast<double>(s_base / element_bytes) * 3.0;
  const double prog_new = static_cast<double>(s_new / element_bytes) * 3.0;
  const double mm_base =
      prog_base * cachesim::MainMemoryMissRate(access, s_base, cache);
  const double mm_new =
      prog_new * cachesim::MainMemoryMissRate(access, s_new, cache);
  if (mm_base <= 0 || mm_new <= 0) return 1.0;
  // alpha such that Eq. 1 maps mm_base at s_base to mm_new at s_new.
  return (static_cast<double>(s_new) * mm_base) /
         (static_cast<double>(s_base) * mm_new);
}

AlphaEstimator::AlphaEstimator(trace::AccessPattern pattern,
                               std::uint32_t element_bytes,
                               std::uint32_t stride_elements,
                               bool input_independent)
    : pattern_(pattern),
      element_bytes_(element_bytes),
      stride_elements_(stride_elements) {
  using trace::AccessPattern;
  switch (pattern) {
    case AccessPattern::kStream:
    case AccessPattern::kStrided:
      refine_ = false;  // fully offline; alpha computed per query
      alpha_ = 1.0;
      break;
    case AccessPattern::kStencil:
      if (input_independent) {
        refine_ = false;
        alpha_ = StencilAlphaOffline(element_bytes);
      } else {
        refine_ = true;
        alpha_ = 1.0;
      }
      break;
    case AccessPattern::kRandom:
    case AccessPattern::kUnknown:
      refine_ = true;
      alpha_ = 1.0;
      break;
  }
}

void AlphaEstimator::SetBase(double s_base_bytes, double prof_mem_acc) {
  s_base_ = s_base_bytes;
  prof_acc_ = prof_mem_acc;
}

double AlphaEstimator::EstimateAccesses(double s_new_bytes) const {
  if (s_base_ <= 0 || prof_acc_ <= 0) return 0.0;
  double alpha = alpha_;
  if (pattern_ == trace::AccessPattern::kStream ||
      pattern_ == trace::AccessPattern::kStrided) {
    alpha = LinearAlpha(static_cast<std::uint64_t>(s_base_),
                        static_cast<std::uint64_t>(std::max(1.0, s_new_bytes)),
                        element_bytes_, stride_elements_);
  }
  return s_new_bytes / (s_base_ * alpha) * prof_acc_;
}

void AlphaEstimator::Refine(double s_new_bytes, double measured_mm_acc) {
  if (!refine_ || s_base_ <= 0 || prof_acc_ <= 0 || measured_mm_acc <= 0 ||
      s_new_bytes <= 0) {
    return;
  }
  // Implied alpha from this instance's measurement (solve Eq. 1 for alpha).
  const double implied = (s_new_bytes * prof_acc_) / (s_base_ * measured_mm_acc);
  if (!std::isfinite(implied) || implied <= 0) return;
  // EWMA: early instances move alpha quickly, later ones stabilise it.
  const double eta = refinements_ == 0 ? 0.8 : 0.4;
  alpha_ = (1.0 - eta) * alpha_ + eta * implied;
  ++refinements_;
}

}  // namespace merch::core
