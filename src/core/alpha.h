// Input-aware memory-access quantification (paper Section 4, Eq. 1):
//
//   esti_mem_acc = S_new / (S_base * alpha) * prof_mem_acc
//
// alpha captures how the caching effect makes access counts scale
// differently from object sizes:
//  - stream/strided: computed offline from stride length and data type
//    (cache-line rounding; the paper's 192B/128B integer example),
//  - input-independent stencils: measured offline with a microbenchmark
//    (program-level counts vs. performance-counter counts),
//  - input-dependent stencils and random: initialised to 1 and refined at
//    runtime from PEBS-attributed measurements over task instances.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "trace/pattern.h"

namespace merch::core {

/// Offline alpha for affine patterns. `s_base`/`s_new` in bytes. The value
/// corrects Eq. 1's size ratio for cache-line rounding: with it, the
/// estimate reproduces the line-granular access count exactly.
double LinearAlpha(std::uint64_t s_base, std::uint64_t s_new,
                   std::uint32_t element_bytes, std::uint32_t stride_elements);

/// Offline alpha for input-independent stencils, via the microbenchmark
/// procedure: "run a microbenchmark practicing the stencil pattern ...
/// measure how many main memory accesses are caused ... alpha is the ratio
/// of the program-level measurement to the counter-based measurement"
/// (Section 4). Our performance counters are the cache model's ground
/// truth.
double StencilAlphaOffline(std::uint32_t element_bytes);

/// Per-(task, object) estimator implementing Eq. 1 plus runtime
/// refinement.
class AlphaEstimator {
 public:
  AlphaEstimator() = default;
  AlphaEstimator(trace::AccessPattern pattern, std::uint32_t element_bytes,
                 std::uint32_t stride_elements, bool input_independent = true);

  /// Record the base-input profile: object size and profiled main-memory
  /// access count (from the PTE-scan/Thermostat profile of the first task
  /// instance).
  void SetBase(double s_base_bytes, double prof_mem_acc);
  bool has_base() const { return s_base_ > 0; }

  /// Eq. 1 estimate for a new input size.
  double EstimateAccesses(double s_new_bytes) const;

  /// Iterative refinement from a PEBS-measured count for a completed
  /// instance (input-dependent stencil / random / unknown patterns only;
  /// offline patterns ignore refinement).
  void Refine(double s_new_bytes, double measured_mm_acc);

  double alpha() const { return alpha_; }
  trace::AccessPattern pattern() const { return pattern_; }
  bool refines_at_runtime() const { return refine_; }

 private:
  trace::AccessPattern pattern_ = trace::AccessPattern::kUnknown;
  std::uint32_t element_bytes_ = 8;
  std::uint32_t stride_elements_ = 1;
  bool refine_ = true;   // runtime-refined (random/unknown/dependent stencil)
  double alpha_ = 1.0;
  double s_base_ = 0;
  double prof_acc_ = 0;
  int refinements_ = 0;
};

}  // namespace merch::core
