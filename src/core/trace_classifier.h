// Trace-driven access-pattern detection — the paper's fallback when source
// code is unavailable (Section 5.3, "Limitation"): "we can use a dynamic
// binary instrumentation tool to ... generate instruction traces. Then, we
// use a tool to identify memory access patterns of the traces."
//
// This is that second tool: given the address trace of one data object
// (what a Pin/Gleipnir-style instrumenter would emit, filtered to the
// object's range), classify the access pattern with the same four-way
// labels the static classifier produces. Detection logic:
//   - compute successive address deltas (in elements);
//   - constant delta 1/-1            -> Stream
//   - constant delta |d| > 1         -> Strided
//   - small alternating neighborhood
//     deltas with strong reuse       -> Stencil
//   - anything else                  -> Random
#pragma once

#include <cstdint>
#include <span>

#include "trace/pattern.h"

namespace merch::core {

struct TraceClassification {
  trace::AccessPattern pattern = trace::AccessPattern::kUnknown;
  /// Dominant absolute stride in elements (Stream/Strided).
  std::int64_t stride = 0;
  /// Fraction of deltas matching the dominant behaviour (confidence).
  double confidence = 0;
};

struct TraceClassifierConfig {
  std::uint32_t element_bytes = 8;
  /// Minimum fraction of deltas that must agree for a Stream/Strided call.
  double stride_agreement = 0.85;
  /// Neighborhood radius (in elements) under which back-and-forth deltas
  /// count as stencil locality.
  std::int64_t stencil_radius = 4;
  /// Minimum fraction of in-neighborhood deltas for a Stencil call.
  double stencil_agreement = 0.7;
};

/// Classify one object's address trace (byte addresses, program order).
/// Traces shorter than 8 accesses return kUnknown.
TraceClassification ClassifyTrace(std::span<const std::uint64_t> addresses,
                                  const TraceClassifierConfig& config = {});

}  // namespace merch::core
