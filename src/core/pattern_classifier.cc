#include "core/pattern_classifier.h"

#include <algorithm>
#include <set>

namespace merch::core {
namespace {

using trace::AccessPattern;

/// Severity order for merging: higher = less cache friendly.
int Severity(AccessPattern p) {
  switch (p) {
    case AccessPattern::kStream:
      return 0;
    case AccessPattern::kStrided:
      return 1;
    case AccessPattern::kStencil:
      return 2;
    case AccessPattern::kUnknown:
      return 3;
    case AccessPattern::kRandom:
      return 4;
  }
  return 4;
}

AccessPattern Merge(AccessPattern a, AccessPattern b) {
  return Severity(a) >= Severity(b) ? a : b;
}

AccessPattern ClassifyRef(const ArrayRef& ref) {
  switch (ref.subscript.kind) {
    case Subscript::Kind::kAffine:
      return std::abs(ref.subscript.stride) <= 1 ? AccessPattern::kStream
                                                 : AccessPattern::kStrided;
    case Subscript::Kind::kNeighborhood: {
      // A single-offset "neighborhood" is just a shifted stream.
      return ref.subscript.offsets.size() >= 2 ? AccessPattern::kStencil
                                               : AccessPattern::kStream;
    }
    case Subscript::Kind::kIndirect:
      return AccessPattern::kRandom;
    case Subscript::Kind::kOpaque:
      return AccessPattern::kUnknown;
  }
  return AccessPattern::kUnknown;
}

}  // namespace

AccessPattern ClassifyObjectInLoop(const LoopNest& loop, std::size_t object) {
  bool referenced = false;
  AccessPattern result = AccessPattern::kStream;
  for (const ArrayRef& ref : loop.refs) {
    if (ref.object == object) {
      const AccessPattern p = ClassifyRef(ref);
      result = referenced ? Merge(result, p) : p;
      referenced = true;
    }
    // The index array of an indirect reference is itself swept
    // sequentially (B in A[i] = B[C[i]] is random; C is a stream).
    if (ref.subscript.kind == Subscript::Kind::kIndirect &&
        ref.subscript.index_object == object) {
      result = referenced ? Merge(result, AccessPattern::kStream)
                          : AccessPattern::kStream;
      referenced = true;
    }
  }
  return referenced ? result : AccessPattern::kUnknown;
}

std::vector<AccessPattern> ClassifyTask(const TaskIr& task,
                                        std::size_t num_objects) {
  std::vector<AccessPattern> out(num_objects, AccessPattern::kUnknown);
  std::vector<bool> seen(num_objects, false);
  for (const LoopNest& loop : task.loops) {
    for (std::size_t obj = 0; obj < num_objects; ++obj) {
      bool referenced = false;
      for (const ArrayRef& ref : loop.refs) {
        if (ref.object == obj ||
            (ref.subscript.kind == Subscript::Kind::kIndirect &&
             ref.subscript.index_object == obj)) {
          referenced = true;
          break;
        }
      }
      if (!referenced) continue;
      const AccessPattern p = ClassifyObjectInLoop(loop, obj);
      out[obj] = seen[obj] ? Merge(out[obj], p) : p;
      seen[obj] = true;
    }
  }
  return out;
}

std::vector<AccessPattern> DistinctPatterns(const std::vector<TaskIr>& tasks,
                                            std::size_t num_objects) {
  std::set<int> seen;
  for (const TaskIr& t : tasks) {
    const auto per_object = ClassifyTask(t, num_objects);
    for (std::size_t obj = 0; obj < per_object.size(); ++obj) {
      // Only count objects the task actually references.
      bool referenced = false;
      for (const LoopNest& loop : t.loops) {
        for (const ArrayRef& ref : loop.refs) {
          if (ref.object == obj ||
              (ref.subscript.kind == Subscript::Kind::kIndirect &&
               ref.subscript.index_object == obj)) {
            referenced = true;
            break;
          }
        }
        if (referenced) break;
      }
      if (referenced) seen.insert(static_cast<int>(per_object[obj]));
    }
  }
  std::vector<AccessPattern> out;
  for (const int p : seen) out.push_back(static_cast<AccessPattern>(p));
  return out;
}

}  // namespace merch::core
