#include "core/pattern_classifier.h"

#include <algorithm>
#include <set>

namespace merch::core {
namespace {

using trace::AccessPattern;

/// Severity order for merging: higher = less cache friendly.
int Severity(AccessPattern p) {
  switch (p) {
    case AccessPattern::kStream:
      return 0;
    case AccessPattern::kStrided:
      return 1;
    case AccessPattern::kStencil:
      return 2;
    case AccessPattern::kUnknown:
      return 3;
    case AccessPattern::kRandom:
      return 4;
  }
  return 4;
}

AccessPattern Merge(AccessPattern a, AccessPattern b) {
  return Severity(a) >= Severity(b) ? a : b;
}

/// Referenced-object bitmap for one task, computed in a single scan over
/// the task's refs.
std::vector<bool> ReferencedObjects(const TaskIr& task,
                                    std::size_t num_objects) {
  std::vector<bool> referenced(num_objects, false);
  for (const LoopNest& loop : task.loops) {
    for (const ArrayRef& ref : loop.refs) {
      if (ref.object < num_objects) referenced[ref.object] = true;
      if (ref.subscript.kind == Subscript::Kind::kIndirect &&
          ref.subscript.index_object < num_objects) {
        referenced[ref.subscript.index_object] = true;
      }
    }
  }
  return referenced;
}

}  // namespace

bool RefTouchesObject(const ArrayRef& ref, std::size_t object) {
  if (ref.object == object) return true;
  return ref.subscript.kind == Subscript::Kind::kIndirect &&
         ref.subscript.index_object == object;
}

AccessPattern ClassifyRef(const ArrayRef& ref) {
  switch (ref.subscript.kind) {
    case Subscript::Kind::kAffine:
      // Stride 0 is a scalar broadcast (A[c]): a degenerate stream whose
      // footprint is one cache line, not the object. The 4-way label stays
      // kStream; analysis::ClassifyRefClass carries the distinction.
      return std::abs(ref.subscript.stride) <= 1 ? AccessPattern::kStream
                                                 : AccessPattern::kStrided;
    case Subscript::Kind::kNeighborhood: {
      // A single-offset "neighborhood" is just a shifted stream.
      return ref.subscript.offsets.size() >= 2 ? AccessPattern::kStencil
                                               : AccessPattern::kStream;
    }
    case Subscript::Kind::kIndirect:
      return AccessPattern::kRandom;
    case Subscript::Kind::kOpaque:
      return AccessPattern::kUnknown;
  }
  return AccessPattern::kUnknown;
}

AccessPattern ClassifyObjectInLoop(const LoopNest& loop, std::size_t object) {
  bool referenced = false;
  AccessPattern result = AccessPattern::kStream;
  for (const ArrayRef& ref : loop.refs) {
    if (!RefTouchesObject(ref, object)) continue;
    // The index array of an indirect reference is itself swept
    // sequentially (B in A[i] = B[C[i]] is random; C is a stream) — even
    // when the same ref also names the object directly.
    AccessPattern p = ref.object == object ? ClassifyRef(ref)
                                           : AccessPattern::kStream;
    if (ref.object == object &&
        ref.subscript.kind == Subscript::Kind::kIndirect &&
        ref.subscript.index_object == object) {
      p = Merge(p, AccessPattern::kStream);
    }
    result = referenced ? Merge(result, p) : p;
    referenced = true;
  }
  return referenced ? result : AccessPattern::kUnknown;
}

std::vector<AccessPattern> ClassifyTask(const TaskIr& task,
                                        std::size_t num_objects) {
  std::vector<AccessPattern> out(num_objects, AccessPattern::kUnknown);
  std::vector<bool> seen(num_objects, false);
  for (const LoopNest& loop : task.loops) {
    for (std::size_t obj = 0; obj < num_objects; ++obj) {
      const bool referenced =
          std::any_of(loop.refs.begin(), loop.refs.end(),
                      [obj](const ArrayRef& r) {
                        return RefTouchesObject(r, obj);
                      });
      if (!referenced) continue;
      const AccessPattern p = ClassifyObjectInLoop(loop, obj);
      out[obj] = seen[obj] ? Merge(out[obj], p) : p;
      seen[obj] = true;
    }
  }
  return out;
}

std::vector<AccessPattern> DistinctPatterns(const std::vector<TaskIr>& tasks,
                                            std::size_t num_objects) {
  std::set<int> seen;
  for (const TaskIr& t : tasks) {
    const auto per_object = ClassifyTask(t, num_objects);
    // One scan for the referenced set instead of a per-object loop rescan
    // (only referenced objects count — an unreferenced object's kUnknown
    // is absence, not a pattern).
    const std::vector<bool> referenced = ReferencedObjects(t, num_objects);
    for (std::size_t obj = 0; obj < per_object.size(); ++obj) {
      if (referenced[obj]) seen.insert(static_cast<int>(per_object[obj]));
    }
  }
  std::vector<AccessPattern> out;
  for (const int p : seen) out.push_back(static_cast<AccessPattern>(p));
  return out;
}

}  // namespace merch::core
