// The whole performance model of paper Section 5 (Eq. 2):
//
//   T_hybrid = T_pm_only * (1 - r) * f(PMCs, r) + T_dram_only * r
//
// with r = dram_acc / esti_mem_acc. Boundary behaviour: r=0 gives
// T_pm_only * f(PMCs, 0) (f is trained to be ~1 there), r=1 gives
// T_dram_only exactly.
#pragma once

#include <algorithm>

#include "core/correlation.h"
#include "sim/pmc.h"

namespace merch::core {

class PerformanceModel {
 public:
  explicit PerformanceModel(const CorrelationFunction* correlation)
      : correlation_(correlation) {}

  /// Eq. 2. `r_dram` = predicted fraction of main-memory accesses served
  /// by DRAM.
  double PredictHybrid(double t_pm_only, double t_dram_only,
                       const sim::EventVector& pmcs, double r_dram) const;

  /// The Eq. 2 arithmetic for an already-clamped r (< 1) and an
  /// already-evaluated f: t = t_pm*(1-r)*f + t_dram*r, clamped to the
  /// homogeneous extremes. Shared by every Eq. 2 path so the operation
  /// sequence exists exactly once (bit-identity across scalar, grid, and
  /// profile-based evaluation).
  static double Combine(double t_pm_only, double t_dram_only,
                        double r_clamped, double f) {
    const double t = t_pm_only * (1.0 - r_clamped) * f + t_dram_only * r_clamped;
    return std::clamp(t, std::min(t_dram_only, t_pm_only),
                      std::max(t_dram_only, t_pm_only));
  }

  /// The task's feature prefix for grid evaluation (the PMC part of the
  /// model row; only r varies across the decision loop's probes).
  std::vector<double> PrefixRow(const sim::EventVector& pmcs) const;

  /// Eq. 2 for many r values of one task as a single batched model pass.
  /// out[i] is bitwise equal to PredictHybrid(t_pm_only, t_dram_only,
  /// pmcs, r_values[i]) for the pmcs behind `prefix` — same clamps and
  /// boundary shortcut (r >= 1 returns t_dram_only without a model call).
  void PredictHybridGrid(double t_pm_only, double t_dram_only,
                         std::span<const double> prefix,
                         std::span<const double> r_values,
                         std::span<double> out) const;

  const CorrelationFunction& correlation() const { return *correlation_; }

 private:
  const CorrelationFunction* correlation_;
};

/// The comparison model of Table 4 ("profiling-based regression" [8]):
/// scale the base-input execution time by the object-size ratio between
/// base and new inputs — no workload characteristics, no placement term.
double ProfilingRegressionPredict(double t_base, double s_base_total,
                                  double s_new_total);

}  // namespace merch::core
