// The whole performance model of paper Section 5 (Eq. 2):
//
//   T_hybrid = T_pm_only * (1 - r) * f(PMCs, r) + T_dram_only * r
//
// with r = dram_acc / esti_mem_acc. Boundary behaviour: r=0 gives
// T_pm_only * f(PMCs, 0) (f is trained to be ~1 there), r=1 gives
// T_dram_only exactly.
#pragma once

#include "core/correlation.h"
#include "sim/pmc.h"

namespace merch::core {

class PerformanceModel {
 public:
  explicit PerformanceModel(const CorrelationFunction* correlation)
      : correlation_(correlation) {}

  /// Eq. 2. `r_dram` = predicted fraction of main-memory accesses served
  /// by DRAM.
  double PredictHybrid(double t_pm_only, double t_dram_only,
                       const sim::EventVector& pmcs, double r_dram) const;

  const CorrelationFunction& correlation() const { return *correlation_; }

 private:
  const CorrelationFunction* correlation_;
};

/// The comparison model of Table 4 ("profiling-based regression" [8]):
/// scale the base-input execution time by the object-size ratio between
/// base and new inputs — no workload characteristics, no placement term.
double ProfilingRegressionPredict(double t_base, double s_base_total,
                                  double s_new_total);

}  // namespace merch::core
