#include "core/correlation.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace merch::core {

const std::vector<std::size_t>& CorrelationFunction::PaperEvents() {
  // LLC_MPKI, IPC, PRF_Miss, MEM_WCY, L2_LD_Miss, BR_MSP, VEC_INS,
  // L3_LD_Miss — Section 5.1's list, in decreasing importance.
  static const std::vector<std::size_t> kEvents = {
      sim::kLlcMpki, sim::kIpc,    sim::kPrfMiss, sim::kMemWcy,
      sim::kL2LdMiss, sim::kBrMsp, sim::kVecIns,  sim::kL3LdMiss};
  return kEvents;
}

CorrelationFunction::CorrelationFunction() : CorrelationFunction(Config()) {}

CorrelationFunction::CorrelationFunction(Config config)
    : config_(std::move(config)) {
  if (config_.events.empty()) config_.events = PaperEvents();
}

void CorrelationFunction::Train(
    const std::vector<workloads::TrainingSample>& samples) {
  assert(!samples.empty());
  const ml::Dataset data = workloads::ToDataset(samples, config_.events);
  Rng rng(config_.seed);
  auto [train, test] = data.Split(config_.train_fraction, rng);
  model_ = ml::MakeRegressor(config_.model_kind, config_.seed);
  model_->Fit(train);
  test_r2_ = model_->Score(test);
}

double CorrelationFunction::Evaluate(const sim::EventVector& pmcs,
                                     double r_dram) const {
  assert(trained());
  const auto row =
      workloads::MakeFeatureRow(pmcs, std::clamp(r_dram, 0.0, 1.0),
                                config_.events);
  // f scales a positive execution-time term; clamp pathological
  // extrapolations.
  return std::clamp(model_->Predict(row), 0.05, 5.0);
}

}  // namespace merch::core
