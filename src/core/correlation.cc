#include "core/correlation.h"

#include <algorithm>
#include <cassert>

#include "common/env.h"
#include "common/rng.h"

namespace merch::core {

const std::vector<std::size_t>& CorrelationFunction::PaperEvents() {
  // LLC_MPKI, IPC, PRF_Miss, MEM_WCY, L2_LD_Miss, BR_MSP, VEC_INS,
  // L3_LD_Miss — Section 5.1's list, in decreasing importance.
  static const std::vector<std::size_t> kEvents = {
      sim::kLlcMpki, sim::kIpc,    sim::kPrfMiss, sim::kMemWcy,
      sim::kL2LdMiss, sim::kBrMsp, sim::kVecIns,  sim::kL3LdMiss};
  return kEvents;
}

CorrelationFunction::CorrelationFunction() : CorrelationFunction(Config()) {}

CorrelationFunction::CorrelationFunction(Config config)
    : config_(std::move(config)) {
  if (config_.events.empty()) config_.events = PaperEvents();
}

void CorrelationFunction::Train(
    const std::vector<workloads::TrainingSample>& samples) {
  assert(!samples.empty());
  const ml::Dataset data = workloads::ToDataset(samples, config_.events);
  Rng rng(config_.seed);
  auto [train, test] = data.Split(config_.train_fraction, rng);
  model_ = ml::MakeRegressor(config_.model_kind, config_.seed);
  model_->Fit(train);
  test_r2_ = model_->Score(test);
  // Cached specializations belong to the previous fit.
  std::lock_guard<std::mutex> lock(profiles_->mu);
  profiles_->map.clear();
}

double CorrelationFunction::Evaluate(const sim::EventVector& pmcs,
                                     double r_dram) const {
  assert(trained());
  const auto row =
      workloads::MakeFeatureRow(pmcs, std::clamp(r_dram, 0.0, 1.0),
                                config_.events);
  // f scales a positive execution-time term; clamp pathological
  // extrapolations.
  return std::clamp(model_->Predict(row), 0.05, 5.0);
}

std::vector<double> CorrelationFunction::PrefixRow(
    const sim::EventVector& pmcs) const {
  // Mirrors workloads::MakeFeatureRow minus the trailing r slot.
  std::vector<double> prefix;
  if (config_.events.empty()) {
    prefix.assign(pmcs.begin(), pmcs.end());
  } else {
    prefix.reserve(config_.events.size());
    for (const std::size_t e : config_.events) prefix.push_back(pmcs.at(e));
  }
  return prefix;
}

double CorrelationProfile::Evaluate(double r_dram) const {
  const double rc = std::clamp(r_dram, 0.0, 1.0);
  if (partial_) {
    // Same row layout as Evaluate (prefix + clamped r), same output
    // clamp; the partial prediction itself is bitwise equal to the full
    // model walk (ml/flat_forest.h).
    return std::clamp(partial_->Predict(rc), 0.05, 5.0);
  }
  return fn_->Evaluate(pmcs_, r_dram);
}

CorrelationProfile CorrelationFunction::MakeProfile(
    const sim::EventVector& pmcs) const {
  assert(trained());
  CorrelationProfile profile;
  profile.fn_ = this;
  profile.pmcs_ = pmcs;
  // The r slot is always the trailing feature (workloads::MakeFeatureRow);
  // its placeholder value is irrelevant — Specialize leaves it free.
  const auto row = workloads::MakeFeatureRow(pmcs, 0.0, config_.events);
  // The cache is bypassed (not just missed) when specialization is
  // disabled, so a MERCH_FLAT_FOREST=0 run never sees profiles built
  // while the toggle was on.
  if (!common::EnvToggle("MERCH_FLAT_FOREST", true)) return profile;
  std::string key(reinterpret_cast<const char*>(row.data()),
                  row.size() * sizeof(double));
  {
    std::lock_guard<std::mutex> lock(profiles_->mu);
    ProfileEntry& entry = profiles_->map[key];
    ++entry.calls;
    if (entry.model != nullptr) {
      profile.partial_ = entry.model;
      return profile;
    }
    // First sight of this row: scalar fallback, no construction cost.
    if (entry.calls < 2) return profile;
  }
  std::shared_ptr<const ml::PartialModel> built =
      model_->Specialize(row, row.size() - 1);
  if (built != nullptr) {
    std::lock_guard<std::mutex> lock(profiles_->mu);
    ProfileEntry& entry = profiles_->map[key];
    if (entry.model == nullptr) entry.model = std::move(built);
    profile.partial_ = entry.model;  // first insert wins
  }
  return profile;
}

void CorrelationFunction::EvaluateGrid(std::span<const double> prefix,
                                       std::span<const double> r_values,
                                       std::span<double> out) const {
  assert(trained());
  assert(r_values.size() == out.size());
  const std::size_t num_features = prefix.size() + 1;
  std::vector<double> rows(r_values.size() * num_features);
  for (std::size_t i = 0; i < r_values.size(); ++i) {
    double* row = rows.data() + i * num_features;
    std::copy(prefix.begin(), prefix.end(), row);
    row[prefix.size()] = std::clamp(r_values[i], 0.0, 1.0);
  }
  model_->PredictBatch(rows, num_features, out);
  for (double& f : out) f = std::clamp(f, 0.05, 5.0);
}

}  // namespace merch::core
