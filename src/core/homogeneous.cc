#include "core/homogeneous.h"

#include <cassert>
#include <cmath>
#include <set>

#include "common/stats.h"

namespace merch::core {

double SimilarityScale(const std::vector<std::uint64_t>& base_sizes,
                       const std::vector<std::uint64_t>& new_sizes) {
  assert(base_sizes.size() == new_sizes.size());
  std::vector<double> base(base_sizes.begin(), base_sizes.end());
  std::vector<double> now(new_sizes.begin(), new_sizes.end());
  const double cos = CosineSimilarity(base, now);
  double norm_base = 0, norm_new = 0;
  for (const double v : base) norm_base += v * v;
  for (const double v : now) norm_new += v * v;
  if (norm_base <= 0) return 1.0;
  return cos * std::sqrt(norm_new / norm_base);
}

HomogeneousPredictor HomogeneousPredictor::Prepare(
    const sim::Workload& workload, const sim::MachineSpec& machine,
    std::size_t base_region) {
  assert(base_region < workload.regions.size());
  // Offline measurement workload: just the base region.
  sim::Workload base;
  base.name = workload.name + "_base";
  base.objects = workload.objects;
  base.regions.push_back(workload.regions[base_region]);

  sim::SimConfig cfg;
  cfg.interval_seconds = 1e9;
  const sim::SimResult pm =
      sim::SimulateHomogeneous(base, machine, hm::Tier::kPm, cfg);
  const sim::SimResult dram =
      sim::SimulateHomogeneous(base, machine, hm::Tier::kDram, cfg);

  HomogeneousPredictor pred;
  const sim::Region& region = workload.regions[base_region];
  pred.base_sizes_ = region.active_bytes.empty()
                         ? std::vector<std::uint64_t>()
                         : region.active_bytes;
  if (pred.base_sizes_.empty()) {
    for (const sim::ObjectDecl& o : workload.objects) {
      pred.base_sizes_.push_back(o.bytes);
    }
  }
  for (std::size_t ti = 0; ti < region.tasks.size(); ++ti) {
    TaskProfile profile;
    profile.pm_seconds = pm.regions.at(0).tasks.at(ti).kernel_seconds;
    profile.dram_seconds = dram.regions.at(0).tasks.at(ti).kernel_seconds;
    std::set<std::size_t> touched;
    for (const sim::Kernel& k : region.tasks[ti].kernels) {
      for (const trace::ObjectAccess& a : k.accesses) {
        touched.insert(a.object);
      }
    }
    profile.objects.assign(touched.begin(), touched.end());
    pred.per_task_[region.tasks[ti].task] = std::move(profile);
  }
  return pred;
}

double HomogeneousPredictor::Predict(
    TaskId task, hm::Tier tier,
    const std::vector<std::uint64_t>& new_sizes) const {
  const auto it = per_task_.find(task);
  if (it == per_task_.end()) return 0.0;
  const TaskProfile& profile = it->second;
  // Similarity over the task's own input objects only.
  std::vector<std::uint64_t> base_sub, new_sub;
  for (const std::size_t obj : profile.objects) {
    if (obj < base_sizes_.size() && obj < new_sizes.size()) {
      base_sub.push_back(base_sizes_[obj]);
      new_sub.push_back(new_sizes[obj]);
    }
  }
  const double scale = base_sub.empty()
                           ? SimilarityScale(base_sizes_, new_sizes)
                           : SimilarityScale(base_sub, new_sub);
  const std::vector<double>& times =
      tier == hm::Tier::kPm ? profile.pm_seconds : profile.dram_seconds;
  double total = 0;
  for (const double t : times) total += t;
  return total * scale;
}

}  // namespace merch::core
