// The correlation function f(PMCs, r_dram) of Eq. 2 (paper Section 5.1):
// a statistical model trained offline on code samples, evaluated online in
// microseconds. The paper selects GBR (highest R^2, Table 3) over DTR,
// SVR, KNR, RFR and an MLP, and trims the input to 8 events chosen by Gini
// importance.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/model.h"
#include "sim/pmc.h"
#include "workloads/training.h"

namespace merch::core {

class CorrelationFunction;

/// f specialized on one task's PMC vector: the feature prefix is fixed
/// and only the trailing r slot varies — the decision loop's exact access
/// pattern. Backed by the model's PartialModel specialization (tree
/// ensembles collapse to a piecewise-constant function of r, evaluated at
/// binary-search cost); Evaluate(r) is bitwise equal to
/// CorrelationFunction::Evaluate(pmcs, r). Falls back to the scalar path
/// for models without a specialization. Specializations are shared
/// through the owning CorrelationFunction's profile cache, so re-deciding
/// the same tasks (capacity sweeps, repeated instances) skips the
/// construction cost entirely.
class CorrelationProfile {
 public:
  CorrelationProfile() = default;
  CorrelationProfile(CorrelationProfile&&) = default;
  CorrelationProfile& operator=(CorrelationProfile&&) = default;

  /// f(pmcs, r) for the pmcs this profile was built from.
  double Evaluate(double r_dram) const;

  bool specialized() const { return partial_ != nullptr; }

 private:
  friend class CorrelationFunction;

  const CorrelationFunction* fn_ = nullptr;
  sim::EventVector pmcs_{};  // fallback path only
  std::shared_ptr<const ml::PartialModel> partial_;
};

class CorrelationFunction {
 public:
  struct Config {
    std::string model_kind = "GBR";
    /// PMC indices used as features (r_dram is always appended). Empty =
    /// the paper's 8 selected events.
    std::vector<std::size_t> events;
    double train_fraction = 0.7;  // paper: 70/30 split
    std::uint64_t seed = 17;
  };

  CorrelationFunction();
  explicit CorrelationFunction(Config config);

  /// Offline step 1: train on generated code-sample data. Happens once;
  /// the trained function is reusable across applications.
  void Train(const std::vector<workloads::TrainingSample>& samples);

  /// f(PMCs, r): scaling applied to the PM-only term of Eq. 2.
  double Evaluate(const sim::EventVector& pmcs, double r_dram) const;

  /// The per-task feature prefix: the selected events of `pmcs` in model
  /// order, without the trailing r slot. Computed once per task and
  /// reused across every r the decision loop probes.
  std::vector<double> PrefixRow(const sim::EventVector& pmcs) const;

  /// f for many r values sharing one feature prefix, as one batched model
  /// pass. out[i] is bitwise equal to Evaluate(pmcs, r_values[i]) for the
  /// pmcs behind `prefix` (same row layout, same clamps, and the batched
  /// tree walk is bit-identical — ml/flat_forest.h).
  void EvaluateGrid(std::span<const double> prefix,
                    std::span<const double> r_values,
                    std::span<double> out) const;

  /// Specializes f on one task's PMCs (see CorrelationProfile). The
  /// underlying specialization is memoized per feature row (thread-safe),
  /// so repeated profiles of the same task — capacity sweeps, repeated
  /// instances, warm-started re-decisions — cost one map lookup.
  CorrelationProfile MakeProfile(const sim::EventVector& pmcs) const;

  bool trained() const { return model_ != nullptr; }
  double test_r2() const { return test_r2_; }
  const std::vector<std::size_t>& events() const { return config_.events; }
  const std::string& model_kind() const { return config_.model_kind; }

  /// The 8 events the paper selects, importance-ordered (Section 5.1).
  static const std::vector<std::size_t>& PaperEvents();

 private:
  Config config_;
  std::unique_ptr<ml::Regressor> model_;
  double test_r2_ = 0;
  /// Specialization memo, keyed by the exact bits of the feature row.
  /// `calls` counts MakeProfile requests: the first request for a row
  /// returns the scalar fallback (a one-shot decision never pays the
  /// specialization's construction cost), the second builds and caches
  /// it, and everything after is a map lookup. Values are immutable once
  /// built; concurrent misses may both build (identical) specializations
  /// — the first insert wins, benignly. Behind a pointer so the function
  /// stays movable.
  struct ProfileEntry {
    std::shared_ptr<const ml::PartialModel> model;
    std::uint64_t calls = 0;
  };
  struct ProfileCache {
    std::mutex mu;
    std::unordered_map<std::string, ProfileEntry> map;
  };
  std::unique_ptr<ProfileCache> profiles_ =
      std::make_unique<ProfileCache>();
};

}  // namespace merch::core
