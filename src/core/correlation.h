// The correlation function f(PMCs, r_dram) of Eq. 2 (paper Section 5.1):
// a statistical model trained offline on code samples, evaluated online in
// microseconds. The paper selects GBR (highest R^2, Table 3) over DTR,
// SVR, KNR, RFR and an MLP, and trims the input to 8 events chosen by Gini
// importance.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"
#include "sim/pmc.h"
#include "workloads/training.h"

namespace merch::core {

class CorrelationFunction {
 public:
  struct Config {
    std::string model_kind = "GBR";
    /// PMC indices used as features (r_dram is always appended). Empty =
    /// the paper's 8 selected events.
    std::vector<std::size_t> events;
    double train_fraction = 0.7;  // paper: 70/30 split
    std::uint64_t seed = 17;
  };

  CorrelationFunction();
  explicit CorrelationFunction(Config config);

  /// Offline step 1: train on generated code-sample data. Happens once;
  /// the trained function is reusable across applications.
  void Train(const std::vector<workloads::TrainingSample>& samples);

  /// f(PMCs, r): scaling applied to the PM-only term of Eq. 2.
  double Evaluate(const sim::EventVector& pmcs, double r_dram) const;

  bool trained() const { return model_ != nullptr; }
  double test_r2() const { return test_r2_; }
  const std::vector<std::size_t>& events() const { return config_.events; }
  const std::string& model_kind() const { return config_.model_kind; }

  /// The 8 events the paper selects, importance-ordered (Section 5.1).
  static const std::vector<std::size_t>& PaperEvents();

 private:
  Config config_;
  std::unique_ptr<ml::Regressor> model_;
  double test_r2_ = 0;
};

}  // namespace merch::core
