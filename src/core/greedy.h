// Load-balance-aware DRAM allocation — the paper's Algorithm 1.
//
// Greedy heuristic for the (NP-hard, knapsack-shaped) problem of deciding
// how many of each task's memory accesses should be served from DRAM:
// repeatedly take the task with the longest *predicted* execution time and
// grow its DRAM-access share in 5% steps until it is predicted to dip
// below the second-longest task, tracking the page budget implied by the
// even-distribution assumption (5% more DRAM accesses => 5% more DRAM
// pages), until DRAM capacity is exhausted.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/perf_model.h"
#include "sim/pmc.h"

namespace merch::core {

struct GreedyTaskInput {
  TaskId task = kInvalidTask;
  /// D_i: predicted PM-only execution time of the instance.
  double t_pm_only = 0;
  /// Predicted DRAM-only execution time (the model's other bound).
  double t_dram_only = 0;
  /// PCs_i: hardware events from the base instance.
  sim::EventVector pmcs{};
  /// Total_Acc_i: estimated main-memory accesses with the new input.
  double total_accesses = 0;
  /// Task footprint in pages (MAP_TO_PAGES basis).
  std::uint64_t footprint_pages = 0;
  /// Optional page-cost curve: sorted breakpoints (access_fraction ->
  /// pages) describing how many DRAM pages serving a given share of the
  /// task's accesses costs when pages are chosen densest-object /
  /// hottest-page first. Empty = the paper's even-distribution assumption
  /// (pages = r * footprint_pages). The runtime builds the curve from its
  /// Eq. 1 estimates so Algorithm 1's capacity accounting matches what its
  /// migration step will actually spend.
  std::vector<std::pair<double, double>> pages_for_access_fraction;
};

struct GreedyResult {
  /// r_i: DRAM-access share granted to each task (input order).
  std::vector<double> dram_fraction;
  /// Page budget per task implied by r_i (even-distribution assumption).
  std::vector<std::uint64_t> dram_pages;
  /// Predicted execution time per task after allocation.
  std::vector<double> predicted_seconds;
  int rounds = 0;
};

struct GreedyConfig {
  /// Algorithm 1, line 14: per-iteration DRAM-access increment.
  double step = 0.05;
  /// Safety valve on outer rounds (the algorithm terminates on capacity or
  /// saturation; this guards degenerate inputs).
  int max_rounds = 10000;
  /// Incremental implementation: a lazy-deletion max-heap over predicted
  /// task times replaces the per-round full rescan, and each probed task
  /// evaluates through the correlation function specialized on its PMCs
  /// (CorrelationProfile — the tree ensemble collapses to a
  /// piecewise-constant function of r, so a probe costs a binary search).
  /// Bit-identical to the rescan (same totally-ordered tie-breaks, same
  /// Eq. 2 operation sequence; see greedy.cc). Escape hatch:
  /// MERCH_GREEDY_HEAP=0 forces the rescan at runtime.
  bool incremental = true;
};

GreedyResult RunGreedyAllocation(std::span<const GreedyTaskInput> tasks,
                                 std::uint64_t dram_capacity_pages,
                                 const PerformanceModel& model,
                                 GreedyConfig config = {});

/// Thread-safe exact-input memo for whole greedy runs, shared across a
/// PlacementService's jobs so parallel sweeps warm-start from any point
/// that already decided the same instance. Keyed by a bitwise fingerprint
/// of everything Algorithm 1 reads (task ids, homogeneous bounds, PMCs,
/// access totals, page curves, capacity, step) plus the correlation
/// function's identity; the algorithm is a pure function of those inputs,
/// so replaying a hit is bit-identical to re-running it. Heuristic reuse
/// across *near*-identical inputs is deliberately not attempted — it
/// would break the bit-identity contract.
class GreedyResultCache {
 public:
  static std::string Fingerprint(std::span<const GreedyTaskInput> tasks,
                                 std::uint64_t dram_capacity_pages,
                                 const PerformanceModel& model,
                                 const GreedyConfig& config);

  /// Counts a hit or miss; a miss is expected to be followed by Insert.
  std::shared_ptr<const GreedyResult> Find(const std::string& key);
  void Insert(const std::string& key, GreedyResult result);

  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const GreedyResult>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace merch::core
