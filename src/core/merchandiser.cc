#include "core/merchandiser.h"

#include "obs/trace.h"

namespace merch::core {

MerchandiserSystem MerchandiserSystem::Train(
    workloads::TrainingConfig training,
    CorrelationFunction::Config correlation_config) {
  MERCH_TRACE_SPAN(obs::Category::kCore, "core.train");
  const auto samples = workloads::GenerateTrainingSamples(training);
  CorrelationFunction correlation(correlation_config);
  correlation.Train(samples);
  return MerchandiserSystem(std::move(correlation));
}

std::unique_ptr<MerchandiserPolicy> MerchandiserSystem::MakePolicy(
    const sim::Workload& workload, const sim::MachineSpec& machine,
    MerchandiserConfig config) const {
  HomogeneousPredictor predictor =
      HomogeneousPredictor::Prepare(workload, machine);
  return std::make_unique<MerchandiserPolicy>(&correlation_,
                                              std::move(predictor), config);
}

}  // namespace merch::core
