#include "core/perf_model.h"

#include <algorithm>

namespace merch::core {

double PerformanceModel::PredictHybrid(double t_pm_only, double t_dram_only,
                                       const sim::EventVector& pmcs,
                                       double r_dram) const {
  const double r = std::clamp(r_dram, 0.0, 1.0);
  if (r >= 1.0) return t_dram_only;
  const double f = correlation_->Evaluate(pmcs, r);
  // The prediction is bounded by the homogeneous extremes (Section 5,
  // rationale 1).
  return Combine(t_pm_only, t_dram_only, r, f);
}

std::vector<double> PerformanceModel::PrefixRow(
    const sim::EventVector& pmcs) const {
  return correlation_->PrefixRow(pmcs);
}

void PerformanceModel::PredictHybridGrid(double t_pm_only, double t_dram_only,
                                         std::span<const double> prefix,
                                         std::span<const double> r_values,
                                         std::span<double> out) const {
  const std::size_t n = r_values.size();
  // Entries with r >= 1 short-circuit to t_dram_only exactly as the
  // scalar path does; only the rest go to the model, as one batch.
  std::vector<double> clamped(n);
  std::vector<double> need_r;
  std::vector<std::size_t> need_at;
  need_r.reserve(n);
  need_at.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clamped[i] = std::clamp(r_values[i], 0.0, 1.0);
    if (clamped[i] >= 1.0) {
      out[i] = t_dram_only;
    } else {
      need_r.push_back(clamped[i]);
      need_at.push_back(i);
    }
  }
  if (need_r.empty()) return;
  std::vector<double> f(need_r.size());
  correlation_->EvaluateGrid(prefix, need_r, f);
  for (std::size_t k = 0; k < need_r.size(); ++k) {
    out[need_at[k]] = Combine(t_pm_only, t_dram_only, need_r[k], f[k]);
  }
}

double ProfilingRegressionPredict(double t_base, double s_base_total,
                                  double s_new_total) {
  if (s_base_total <= 0) return t_base;
  return t_base * (s_new_total / s_base_total);
}

}  // namespace merch::core
