#include "core/perf_model.h"

#include <algorithm>

namespace merch::core {

double PerformanceModel::PredictHybrid(double t_pm_only, double t_dram_only,
                                       const sim::EventVector& pmcs,
                                       double r_dram) const {
  const double r = std::clamp(r_dram, 0.0, 1.0);
  if (r >= 1.0) return t_dram_only;
  const double f = correlation_->Evaluate(pmcs, r);
  const double t = t_pm_only * (1.0 - r) * f + t_dram_only * r;
  // The prediction is bounded by the homogeneous extremes (Section 5,
  // rationale 1).
  return std::clamp(t, std::min(t_dram_only, t_pm_only),
                    std::max(t_dram_only, t_pm_only));
}

double ProfilingRegressionPredict(double t_base, double s_base_total,
                                  double s_new_total) {
  if (s_base_total <= 0) return t_base;
  return t_base * (s_new_total / s_base_total);
}

}  // namespace merch::core
