// Thin POSIX TCP helpers shared by the server, client, and router.
//
// Everything here is loopback/IPv4-oriented (the service fronts local
// shard workers; cross-host deployment would sit behind a real proxy) and
// returns errors as strings rather than throwing — the net layer's
// contract is that hostile peers and dead sockets surface as clean error
// paths, never as exceptions or UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace merch::net {

/// Bind + listen on host:port. `port == 0` picks an ephemeral port; the
/// chosen one is written to `*actual_port`. Returns the listening fd
/// (CLOEXEC, SO_REUSEADDR) or -1 with `*error` set.
int ListenOn(const std::string& host, std::uint16_t port,
             std::uint16_t* actual_port, std::string* error);

/// Blocking connect. Returns the fd (CLOEXEC, TCP_NODELAY) or -1.
int ConnectTo(const std::string& host, std::uint16_t port,
              std::string* error);

bool SetNonBlocking(int fd);

/// write(2) until everything is out or the peer dies. Retries EINTR.
bool WriteAll(int fd, const char* data, std::size_t size);

/// Blocking read of up to `size` bytes. Returns bytes read, 0 on orderly
/// shutdown, -1 on error (EINTR retried).
long ReadSome(int fd, char* data, std::size_t size);

void CloseFd(int fd);

/// Process-wide SIGINT/SIGTERM latch built on a self-pipe, so reactors can
/// poll() for shutdown alongside their sockets and CLI drivers can drain
/// in-flight work and flush final metrics instead of dying mid-interval.
class ShutdownSignal {
 public:
  /// Install the handlers (idempotent). Must be called before threads that
  /// should survive the signal are spawned only in the sense that any
  /// thread may call requested()/fd() afterwards.
  static void Install();

  /// True once SIGINT or SIGTERM arrived.
  static bool requested();

  /// Readable end of the self-pipe: becomes readable on the first signal.
  /// poll() this next to the sockets. Never read from it directly — the
  /// single wake byte must stay readable for every poller.
  static int fd();

  /// Re-arm for tests (clears the latch; the pipe is drained).
  static void ResetForTest();
};

}  // namespace merch::net
