// Blocking client for the networked placement service.
//
// One Client owns one TCP connection and is not thread-safe — concurrent
// callers (the load generator, router handler threads) each hold their
// own. Call() sends a request frame and waits for the matching response;
// the server may interleave pings/other seqs, so replies are matched by
// sequence id.
//
// Outcomes are three-valued:
//   kOk             — *result holds the server's PlacementResult (which
//                     may itself carry a request-level .error, exactly as
//                     the in-process service reports them)
//   kRemoteError    — the server answered with an error frame
//                     (*error_code: RETRY_LATER, TIMEOUT, ...); the
//                     connection stays usable
//   kTransportError — the socket died or the server broke protocol; the
//                     client disconnects itself
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "service/request.h"

namespace merch::net {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, std::uint16_t port,
               std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  enum class Status { kOk, kRemoteError, kTransportError };

  /// `deadline_ms == 0` asks for the server's default deadline.
  Status Call(const service::PlacementRequest& request,
              std::uint32_t deadline_ms, service::PlacementResult* result,
              ErrorCode* error_code, std::string* error);

  Status Ping(std::string* error);

  /// Router data path: send a pre-encoded frame and return the matching
  /// reply frame verbatim (whatever its type), so the router relays
  /// responses and error frames without re-encoding them.
  Status Forward(const Frame& frame, Frame* reply, std::string* error);

  /// Sequence id the next Call()/Ping() will use (monotonic per client).
  std::uint32_t next_seq() const { return next_seq_; }

 private:
  Status Transact(const Frame& frame, Frame* reply, std::string* error);

  int fd_ = -1;
  FrameParser parser_;
  std::uint32_t next_seq_ = 1;
};

}  // namespace merch::net
