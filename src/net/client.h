// Blocking client for the networked placement service.
//
// One Client owns one TCP connection and is not thread-safe — concurrent
// callers (the load generator, router handler threads) each hold their
// own. Call() sends a request frame and waits for the matching response;
// the server may interleave pings/other seqs, so replies are matched by
// sequence id.
//
// Outcomes are three-valued:
//   kOk             — *result holds the server's PlacementResult (which
//                     may itself carry a request-level .error, exactly as
//                     the in-process service reports them)
//   kRemoteError    — the server answered with an error frame
//                     (*error_code: RETRY_LATER, TIMEOUT, ...); the
//                     connection stays usable
//   kTransportError — the socket died or the server broke protocol; the
//                     client disconnects itself
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "obs/distributed/export.h"
#include "service/request.h"

namespace merch::net {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, std::uint16_t port,
               std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  enum class Status { kOk, kRemoteError, kTransportError };

  /// `deadline_ms == 0` asks for the server's default deadline. The
  /// calling thread's trace context (obs::CurrentTraceContext) rides in
  /// the v2 request payload, linking the server's spans to the caller's.
  Status Call(const service::PlacementRequest& request,
              std::uint32_t deadline_ms, service::PlacementResult* result,
              ErrorCode* error_code, std::string* error);

  /// `pong` (optional) receives the v2 pong payload: the peer's
  /// trace-clock reading and identity. A v1 pong leaves it zeroed.
  Status Ping(std::string* error, PongPayload* pong = nullptr);

  /// Pull the peer's Prometheus export over a kMetrics frame.
  Status FetchMetrics(MetricsReplyPayload* reply, ErrorCode* error_code,
                      std::string* error);

  /// Router data path: send a pre-encoded frame and return the matching
  /// reply frame verbatim (whatever its type), so the router relays
  /// responses and error frames without re-encoding them.
  Status Forward(const Frame& frame, Frame* reply, std::string* error);

  /// Sequence id the next Call()/Ping() will use (monotonic per client).
  std::uint32_t next_seq() const { return next_seq_; }

 private:
  Status Transact(const Frame& frame, Frame* reply, std::string* error);

  int fd_ = -1;
  FrameParser parser_;
  std::uint32_t next_seq_ = 1;
};

/// Measure the peer's clock relative to the local trace clock with
/// `samples` ping round trips (obs::EstimateClockOffset keeps the
/// minimum-RTT one). Fails if the peer answers v1 pongs (no clock) or
/// the local recorder was never started (NowNs() is meaningless).
bool EstimatePeerClock(Client& client, int samples, obs::PeerClock* out,
                       std::string* error);

}  // namespace merch::net
