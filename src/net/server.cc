#include "net/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/log.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/distributed/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/serialization.h"

namespace merch::net {

namespace {

using Clock = std::chrono::steady_clock;

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  out->clear();
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    out->append(buf, n);
    if (n < sizeof buf) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                     bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

struct PlacementServer::Impl {
  ServerConfig cfg;
  service::PlacementService* svc = nullptr;

  int listen_fd = -1;
  int wake[2] = {-1, -1};
  std::thread reactor;
  std::atomic<bool> stop{false};
  bool started = false;
  bool stopped = false;

  /// One request frame the client is still owed an answer for.
  struct Pending {
    Clock::time_point deadline;
    Clock::time_point t0;  // frame-decode time, for the latency histogram
    std::uint64_t t0_trace_ns = 0;     // trace clock at decode (0 = untraced)
    obs::TraceContext ctx;             // client's v2 context ({0,0} on v1)
    std::uint64_t server_span_id = 0;  // this request's server-side span
    std::uint16_t version = kProtocolVersion;  // echoed in the reply header
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameParser parser;
    std::string out;        // encoded frames not yet written
    std::size_t out_pos = 0;
    std::unordered_map<std::uint32_t, Pending> pending;  // seq -> deadline
  };

  /// A finished simulation's answer, produced on a worker thread (already
  /// encoded there, so the reactor only copies bytes).
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint32_t seq = 0;
    std::string payload;  // encoded PlacementResult
  };

  std::mutex comp_mu;
  std::vector<Completion> completions;

  mutable std::mutex stats_mu;
  ServerStats stats;

  /// Simulations admitted and not yet completed (includes ones whose
  /// client already timed out or disconnected — they still hold a worker).
  std::atomic<std::size_t> inflight{0};

  std::unordered_map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = 1;

  void Wake() {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake[1], &byte, 1);
  }

  void Bump(std::uint64_t ServerStats::* field) {
    std::lock_guard<std::mutex> lock(stats_mu);
    stats.*field += 1;
  }

  /// Replies echo the request frame's version (per-message version rule:
  /// a v1 client of a v2 server sees only v1-shaped frames).
  void QueueFrame(Conn& conn, FrameType type, std::uint32_t seq,
                  std::string payload,
                  std::uint16_t version = kProtocolVersion) {
    Frame frame;
    frame.type = type;
    frame.seq = seq;
    frame.payload = std::move(payload);
    frame.version = version;
    AppendFrame(frame, &conn.out);
  }

  void QueueError(Conn& conn, std::uint32_t seq, ErrorCode code,
                  const std::string& message,
                  std::uint16_t version = kProtocolVersion) {
    QueueFrame(conn, FrameType::kError, seq,
               EncodeErrorPayload(code, message), version);
  }

  /// v2 responses lead with the trace context so the client can associate
  /// the server's spans; v1 responses are the bare encoded result.
  static std::string EncodeResponsePayload(
      std::uint16_t version, const obs::TraceContext& ctx,
      std::uint64_t server_span_id, const service::PlacementResult& result) {
    service::WireWriter w;
    if (version >= 2) {
      w.U64(ctx.trace_id);
      w.U64(server_span_id);
    }
    service::EncodeResult(result, &w);
    return w.Take();
  }

  /// The server-side "net.request" span: decode-to-reply, parented under
  /// the client's span via the propagated context.
  static void RecordRequestSpan(const obs::TraceContext& ctx,
                                std::uint64_t t0_trace_ns) {
    obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
    if (!ctx.valid() || t0_trace_ns == 0 || !rec.enabled()) return;
    obs::TraceContextScope scope(ctx);
    const std::uint64_t now = rec.NowNs();
    rec.RecordSpan(obs::Category::kNet, "net.request", t0_trace_ns,
                   now > t0_trace_ns ? now - t0_trace_ns : 0, "parent_span",
                   static_cast<std::int64_t>(ctx.parent_span_id));
  }

  /// Write as much of conn.out as the socket accepts. False = dead peer.
  bool FlushConn(Conn& conn) {
    while (conn.out_pos < conn.out.size()) {
      const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                                conn.out.size() - conn.out_pos);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      conn.out_pos += static_cast<std::size_t>(n);
    }
    conn.out.clear();
    conn.out_pos = 0;
    return true;
  }

  void DestroyConn(std::uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    CloseFd(it->second.fd);
    conns.erase(it);
    MERCH_METRIC_GAUGE_ADD("merch_net_active_connections", -1);
  }

  void HandleAccepts() {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure: try next round
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      if (conns.size() >= cfg.max_connections) {
        // Connection-level shed: one best-effort RETRY_LATER, then close.
        Frame refuse;
        refuse.type = FrameType::kError;
        refuse.payload = EncodeErrorPayload(
            ErrorCode::kRetryLater, "connection limit reached, retry later");
        const std::string bytes = EncodeFrame(refuse);
        [[maybe_unused]] ssize_t n = ::write(fd, bytes.data(), bytes.size());
        CloseFd(fd);
        Bump(&ServerStats::refused_connections);
        MERCH_METRIC_COUNT("merch_net_refused_connections_total", 1);
        continue;
      }
      Conn conn;
      conn.fd = fd;
      conn.id = next_conn_id++;
      conn.parser = FrameParser(cfg.max_frame_bytes);
      conns.emplace(conn.id, std::move(conn));
      Bump(&ServerStats::connections);
      MERCH_METRIC_COUNT("merch_net_connections_total", 1);
      MERCH_METRIC_GAUGE_ADD("merch_net_active_connections", 1);
    }
  }

  void HandleRequestFrame(Conn& conn, Frame& frame, bool draining) {
    Bump(&ServerStats::requests);
    MERCH_METRIC_COUNT("merch_net_requests_total", 1);
    const Clock::time_point t0 = Clock::now();

    obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
    const std::uint64_t t0_trace_ns = rec.enabled() ? rec.NowNs() : 0;

    service::WireReader r(frame.payload);
    std::uint32_t deadline_ms = 0;
    obs::TraceContext ctx;
    service::PlacementRequest req;
    r.U32(&deadline_ms);
    if (frame.version >= 2) ReadTraceContext(&r, &ctx);
    if (!service::DecodeRequest(&r, &req) || r.remaining() != 0) {
      Bump(&ServerStats::protocol_errors);
      MERCH_METRIC_COUNT("merch_net_protocol_errors_total", 1);
      QueueError(conn, frame.seq, ErrorCode::kMalformed,
                 "undecodable request payload", frame.version);
      return;
    }
    // Every span recorded while handling this request belongs to the
    // client's trace, parented under a fresh server-side span.
    const std::uint64_t server_span_id = ctx.valid() ? obs::NewSpanId() : 0;
    if (draining) {
      QueueError(conn, frame.seq, ErrorCode::kShuttingDown,
                 "server is draining", frame.version);
      return;
    }
    if (conn.pending.count(frame.seq) != 0) {
      Bump(&ServerStats::protocol_errors);
      MERCH_METRIC_COUNT("merch_net_protocol_errors_total", 1);
      QueueError(conn, frame.seq, ErrorCode::kMalformed,
                 "sequence id already in flight on this connection",
                 frame.version);
      return;
    }

    // Cache hits cost no simulation, so they bypass admission control:
    // a saturated server keeps serving its warm set at full speed.
    if (auto cached = svc->Peek(req)) {
      QueueFrame(conn, FrameType::kResponse, frame.seq,
                 EncodeResponsePayload(frame.version, ctx, server_span_id,
                                       *cached),
                 frame.version);
      Bump(&ServerStats::responses);
      MERCH_METRIC_COUNT("merch_net_responses_total", 1);
      RecordRequestSpan(ctx, t0_trace_ns);
      obs::TraceContextScope scope(ctx);
      MERCH_METRIC_OBSERVE_TRACED(
          "merch_net_request_seconds",
          std::chrono::duration<double>(Clock::now() - t0).count());
      return;
    }

    // Admission control: shed rather than queue unboundedly.
    if (inflight.load(std::memory_order_relaxed) >= cfg.max_inflight ||
        svc->QueueDepth() >= cfg.max_queue_depth) {
      Bump(&ServerStats::shed);
      MERCH_METRIC_COUNT("merch_net_shed_total", 1);
      {
        obs::TraceContextScope scope(ctx);
        MERCH_TRACE_INSTANT(obs::Category::kNet, "net.shed");
      }
      QueueError(conn, frame.seq, ErrorCode::kRetryLater,
                 "server over capacity, retry later", frame.version);
      return;
    }

    if (deadline_ms == 0) deadline_ms = cfg.default_deadline_ms;
    if (deadline_ms > cfg.max_deadline_ms) deadline_ms = cfg.max_deadline_ms;
    Pending pending;
    pending.t0 = t0;
    pending.t0_trace_ns = t0_trace_ns;
    pending.ctx = ctx;
    pending.server_span_id = server_span_id;
    pending.version = frame.version;
    pending.deadline = t0 + std::chrono::milliseconds(deadline_ms);
    conn.pending.emplace(frame.seq, pending);
    inflight.fetch_add(1, std::memory_order_relaxed);
    MERCH_METRIC_GAUGE_SET("merch_net_inflight",
                           inflight.load(std::memory_order_relaxed));

    const std::uint64_t conn_id = conn.id;
    const std::uint32_t seq = frame.seq;
    const std::uint16_t version = frame.version;
    // The service captures the submitting thread's context, so install
    // {trace, server span} around SubmitAsync: the simulation's spans
    // nest under this request's server-side span.
    obs::TraceContextScope scope({ctx.trace_id, server_span_id});
    svc->SubmitAsync(
        std::move(req),
        [this, conn_id, seq, version, ctx,
         server_span_id](const service::PlacementResult& result) {
          // Worker thread (or inline): encode here so the reactor only
          // moves bytes, then wake it.
          std::string payload =
              EncodeResponsePayload(version, ctx, server_span_id, result);
          {
            std::lock_guard<std::mutex> lock(comp_mu);
            completions.push_back({conn_id, seq, std::move(payload)});
          }
          Wake();
        });
  }

  /// Returns false if the connection must be dropped.
  bool HandleReadable(Conn& conn, bool draining) {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(conn.fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      if (n == 0) return false;  // orderly close
      conn.parser.Feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) break;
    }

    for (;;) {
      Frame frame;
      std::string perr;
      bool bad_version = false;
      const FrameParser::Status st =
          conn.parser.Next(&frame, &perr, &bad_version);
      if (st == FrameParser::Status::kNeedMore) return true;
      if (st == FrameParser::Status::kBad) {
        Bump(&ServerStats::protocol_errors);
        MERCH_METRIC_COUNT("merch_net_protocol_errors_total", 1);
        // Answer what can be answered, then drop the stream — after a
        // framing error the byte stream has no trustworthy resync point.
        QueueError(conn, 0,
                   bad_version ? ErrorCode::kUnsupportedVersion
                               : ErrorCode::kMalformed,
                   perr);
        FlushConn(conn);
        return false;
      }
      switch (frame.type) {
        case FrameType::kPing: {
          Bump(&ServerStats::pings);
          std::string payload;
          if (frame.version >= 2) {
            // v2 pongs carry this process's trace clock + identity: the
            // raw material for cross-process clock-offset estimation.
            PongPayload pong;
            pong.now_ns = obs::TraceRecorder::Instance().NowNs();
            pong.pid = static_cast<std::uint64_t>(::getpid());
            pong.process_name = cfg.process_name;
            payload = EncodePongPayload(pong);
          }
          QueueFrame(conn, FrameType::kPong, frame.seq, std::move(payload),
                     frame.version);
          break;
        }
        case FrameType::kMetrics: {
          // Metrics pull (v2): answer with this process's Prometheus
          // export so a router can federate shard metrics.
          MetricsReplyPayload reply;
          reply.process_name = cfg.process_name;
          reply.pid = static_cast<std::uint64_t>(::getpid());
          reply.prometheus_text =
              obs::MetricsRegistry::Instance().PrometheusText();
          QueueFrame(conn, FrameType::kMetricsReply, frame.seq,
                     EncodeMetricsReplyPayload(reply), frame.version);
          break;
        }
        case FrameType::kRequest:
          HandleRequestFrame(conn, frame, draining);
          break;
        default:
          // Clients must not send server-to-client frame types.
          Bump(&ServerStats::protocol_errors);
          MERCH_METRIC_COUNT("merch_net_protocol_errors_total", 1);
          QueueError(conn, frame.seq, ErrorCode::kMalformed,
                     "unexpected frame type from client");
          break;
      }
    }
  }

  void DeliverCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(comp_mu);
      batch.swap(completions);
    }
    for (Completion& c : batch) {
      inflight.fetch_sub(1, std::memory_order_relaxed);
      auto it = conns.find(c.conn_id);
      if (it == conns.end()) continue;  // client went away
      Conn& conn = it->second;
      auto pit = conn.pending.find(c.seq);
      if (pit == conn.pending.end()) continue;  // already timed out
      const double seconds =
          std::chrono::duration<double>(Clock::now() - pit->second.t0)
              .count();
      const Pending pending = pit->second;
      conn.pending.erase(pit);
      QueueFrame(conn, FrameType::kResponse, c.seq, std::move(c.payload),
                 pending.version);
      Bump(&ServerStats::responses);
      MERCH_METRIC_COUNT("merch_net_responses_total", 1);
      RecordRequestSpan(pending.ctx, pending.t0_trace_ns);
      obs::TraceContextScope scope(pending.ctx);
      MERCH_METRIC_OBSERVE_TRACED("merch_net_request_seconds", seconds);
    }
    MERCH_METRIC_GAUGE_SET("merch_net_inflight",
                           inflight.load(std::memory_order_relaxed));
  }

  void ExpireDeadlines(const Clock::time_point& now) {
    for (auto& [id, conn] : conns) {
      for (auto it = conn.pending.begin(); it != conn.pending.end();) {
        if (it->second.deadline <= now) {
          QueueError(conn, it->first, ErrorCode::kTimeout,
                     "request deadline expired", it->second.version);
          it = conn.pending.erase(it);
          Bump(&ServerStats::timeouts);
          MERCH_METRIC_COUNT("merch_net_timeout_total", 1);
          MERCH_TRACE_INSTANT(obs::Category::kNet, "net.timeout");
        } else {
          ++it;
        }
      }
    }
  }

  int NextPollTimeoutMs(const Clock::time_point& now) const {
    long best = 500;  // idle tick: refresh gauges, notice stop requests
    for (const auto& [id, conn] : conns) {
      for (const auto& [seq, p] : conn.pending) {
        const long ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            p.deadline - now)
                            .count();
        if (ms < best) best = ms;
      }
    }
    return static_cast<int>(best < 1 ? 1 : best);
  }

  void ReactorLoop() {
    bool draining = false;
    Clock::time_point drain_deadline{};
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;  // ids[i] matches fds[i] for conns

    for (;;) {
      const Clock::time_point now = Clock::now();
      if (!draining && stop.load(std::memory_order_relaxed)) {
        draining = true;
        drain_deadline =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          cfg.drain_timeout_seconds));
        CloseFd(listen_fd);
        listen_fd = -1;
      }
      if (draining) {
        bool idle = true;
        for (auto& [id, conn] : conns) {
          if (!conn.pending.empty() || !conn.out.empty()) idle = false;
        }
        if (idle || now >= drain_deadline) break;
      }

      ExpireDeadlines(now);

      fds.clear();
      ids.clear();
      fds.push_back({wake[0], POLLIN, 0});
      if (listen_fd >= 0) fds.push_back({listen_fd, POLLIN, 0});
      const std::size_t first_conn = fds.size();
      for (auto& [id, conn] : conns) {
        short events = POLLIN;
        if (!conn.out.empty()) events |= POLLOUT;
        fds.push_back({conn.fd, events, 0});
        ids.push_back(id);
      }

      const int timeout = draining ? 10 : NextPollTimeoutMs(now);
      const int ready = ::poll(fds.data(), fds.size(), timeout);
      if (ready < 0 && errno != EINTR) break;  // poll itself broke

      if (fds[0].revents & POLLIN) {
        char buf[64];
        while (::read(wake[0], buf, sizeof buf) > 0) {
        }
      }
      DeliverCompletions();
      if (listen_fd >= 0 && fds.size() > 1 && (fds[1].revents & POLLIN)) {
        HandleAccepts();
      }

      std::vector<std::uint64_t> doomed;
      for (std::size_t i = first_conn; i < fds.size(); ++i) {
        auto it = conns.find(ids[i - first_conn]);
        if (it == conns.end()) continue;
        Conn& conn = it->second;
        const short re = fds[i].revents;
        if (re & (POLLERR | POLLHUP | POLLNVAL)) {
          if (!(re & POLLIN)) {  // nothing left to read: drop now
            doomed.push_back(conn.id);
            continue;
          }
        }
        if ((re & POLLIN) && !HandleReadable(conn, draining)) {
          doomed.push_back(conn.id);
          continue;
        }
        if (!conn.out.empty() && !FlushConn(conn)) {
          doomed.push_back(conn.id);
        }
      }
      for (std::uint64_t id : doomed) DestroyConn(id);
    }

    // Final flush: give fully-buffered responses one last blocking-ish
    // chance, then close everything.
    for (auto& [id, conn] : conns) {
      FlushConn(conn);
      CloseFd(conn.fd);
    }
    conns.clear();
    MERCH_METRIC_GAUGE_SET("merch_net_active_connections", 0);
    CloseFd(listen_fd);
    listen_fd = -1;
  }
};

PlacementServer::PlacementServer(ServerConfig config)
    : config_(std::move(config)) {
  service::PlacementService::Config svc_cfg;
  svc_cfg.threads = config_.threads;
  svc_cfg.cache_capacity = config_.cache_capacity;
  svc_cfg.queue_capacity = config_.queue_capacity;
  service_ = std::make_unique<service::PlacementService>(svc_cfg);
  impl_ = std::make_unique<Impl>();
  impl_->cfg = config_;
  impl_->svc = service_.get();
}

PlacementServer::~PlacementServer() { Stop(); }

bool PlacementServer::Start(std::string* error) {
  if (impl_->started) return true;
  if (!config_.snapshot_load.empty()) {
    std::string bytes, serr;
    if (!ReadWholeFile(config_.snapshot_load, &bytes)) {
      MERCH_LOG(kWarn) << "net: cannot read cache snapshot '"
                       << config_.snapshot_load << "', starting cold";
    } else if (!service_->result_cache().Deserialize(bytes, &serr)) {
      MERCH_LOG(kWarn) << "net: rejected cache snapshot '"
                       << config_.snapshot_load << "': " << serr;
    } else {
      MERCH_LOG(kInfo) << "net: warmed result cache from '"
                       << config_.snapshot_load << "' ("
                       << service_->result_cache().Stats().entries
                       << " entries)";
    }
  }
  if (::pipe(impl_->wake) != 0) {
    if (error != nullptr) *error = "cannot create wake pipe";
    return false;
  }
  SetNonBlocking(impl_->wake[0]);
  SetNonBlocking(impl_->wake[1]);
  impl_->listen_fd = ListenOn(config_.host, config_.port, &port_, error);
  if (impl_->listen_fd < 0) {
    CloseFd(impl_->wake[0]);
    CloseFd(impl_->wake[1]);
    impl_->wake[0] = impl_->wake[1] = -1;
    return false;
  }
  SetNonBlocking(impl_->listen_fd);
  impl_->started = true;
  impl_->reactor = std::thread([this] { impl_->ReactorLoop(); });
  MERCH_LOG(kInfo) << "net: listening on " << config_.host << ":" << port_;
  return true;
}

void PlacementServer::Stop() {
  if (!impl_->started || impl_->stopped) return;
  impl_->stopped = true;
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->Wake();
  if (impl_->reactor.joinable()) impl_->reactor.join();
  CloseFd(impl_->wake[0]);
  CloseFd(impl_->wake[1]);
  // Drain whatever the reactor admitted before it exited (their responses
  // are dropped, but the jobs must finish before teardown).
  service_->Shutdown();
  if (!config_.snapshot_save.empty()) {
    if (WriteFileAtomic(config_.snapshot_save,
                        service_->result_cache().Serialize())) {
      MERCH_LOG(kInfo) << "net: saved cache snapshot to '"
                       << config_.snapshot_save << "'";
    } else {
      MERCH_LOG(kWarn) << "net: cannot write cache snapshot '"
                       << config_.snapshot_save << "'";
    }
  }
}

ServerStats PlacementServer::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  return impl_->stats;
}

}  // namespace merch::net
