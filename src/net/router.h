// Shard router: a multi-process scale-out front for the placement service.
//
// The router spawns N worker processes (each a `merchd --listen` server on
// an ephemeral port), monitors them (restart-on-crash), and forwards every
// client request to the shard chosen by hashing the request's canonical
// key (FNV-1a 64). Determinism makes this sound by construction: any
// worker answers any canonical request bit-identically, so shard placement
// only affects cache locality — a key always lands on the same shard, so
// each worker's ResultCache concentrates on its slice of the key space.
//
// Data path: client connections are handled by a bounded pool of forwarder
// threads (one per connection for its lifetime). A connection beyond the
// pool's capacity is answered with RETRY_LATER and closed — the router
// sheds at the connection level, workers shed at the request level. Each
// forwarder keeps one lazy connection per shard and retries a failed
// forward once (covering worker restarts) before answering UNAVAILABLE.
//
// Worker bootstrap: the router appends `--listen --port 0 --port-file
// <tmp>` to `worker_command` and reads the ephemeral port from the file —
// no port races, no fixed ranges.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/distributed/export.h"

namespace merch::net {

struct RouterConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral
  std::size_t shards = 2;
  /// Binary + base flags for one worker (e.g. {"./merchd", "--threads",
  /// "2"}); the router appends the --listen/--port/--port-file plumbing.
  std::vector<std::string> worker_command;
  /// When non-empty, each worker gets `--snapshot-save <prefix>.shard<i>`
  /// appended so shards persist their cache slice without clobbering each
  /// other (the FNV shard hash is build-stable, so a reload stays warm).
  std::string worker_snapshot_save_prefix;
  /// Forwarder pool width == concurrent client connections.
  std::size_t max_client_connections = 64;
  bool restart_workers = true;
  std::size_t max_frame_bytes = 4u << 20;
  /// Seconds to wait for a spawned worker to publish its port.
  double worker_start_timeout_seconds = 30.0;
  /// When non-empty, each worker gets `--trace <prefix>.shard<i>.json
  /// --process-name shard<i>` appended, and the router ping-syncs every
  /// worker's trace clock after spawn (see worker_clocks()) so
  /// tools/trace_merge can put all exports on one timeline.
  std::string worker_trace_prefix;
  /// Identity in v2 pongs / metrics replies and the `shard` label of the
  /// router's own series in federated exports.
  std::string process_name = "router";
  /// Ping round trips per clock-offset estimate (minimum-RTT sample wins).
  int clock_sync_samples = 8;
};

struct RouterStats {
  std::uint64_t connections = 0;
  std::uint64_t refused_connections = 0;
  std::uint64_t forwarded = 0;       // request frames relayed to a shard
  std::uint64_t worker_errors = 0;   // forwards that failed both attempts
  std::uint64_t restarts = 0;        // workers respawned after a crash
  std::uint64_t protocol_errors = 0;
};

/// Stable shard hash (not std::hash: must be identical across builds so
/// snapshot pre-sharding stays meaningful).
std::uint64_t Fnv1a64(const std::string& s);

class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Spawn workers, wait for their ports, bind, start accept + monitor
  /// threads. False (with `*error`) if any worker fails to come up.
  bool Start(std::string* error);

  std::uint16_t port() const;

  /// Stop accepting, disconnect clients, SIGTERM workers (they drain
  /// gracefully), reap them. Idempotent.
  void Stop();

  RouterStats stats() const;

  /// Worker pids by shard (tests kill one to exercise restart-on-crash).
  std::vector<int> worker_pids() const;

  /// Worker ports by shard (tests pull per-shard metrics directly).
  std::vector<std::uint16_t> worker_ports() const;

  /// Measured worker trace-clock offsets (empty entries when the local
  /// recorder was not running at spawn time). Feed these to
  /// obs::WriteProcessTrace as `peers` so trace_merge can align shards.
  std::vector<obs::PeerClock> worker_clocks() const;

  /// One fleet-level Prometheus export: the router's own registry plus a
  /// live kMetrics pull from every shard, merged by obs::FederateMetrics.
  /// False (with `*error`) if a shard is unreachable or the shard exports
  /// disagree on histogram bucket layouts.
  bool FederatedPrometheus(std::string* out, std::string* error);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace merch::net
