#include "net/client.h"

#include "net/socket.h"
#include "obs/distributed/context.h"
#include "obs/trace.h"
#include "service/serialization.h"

namespace merch::net {

bool Client::Connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  Close();
  fd_ = ConnectTo(host, port, error);
  if (fd_ < 0) return false;
  parser_ = FrameParser();
  return true;
}

void Client::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

Client::Status Client::Transact(const Frame& frame, Frame* reply,
                                std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return Status::kTransportError;
  }
  const std::string bytes = EncodeFrame(frame);
  if (!WriteAll(fd_, bytes.data(), bytes.size())) {
    if (error != nullptr) *error = "write failed (server closed?)";
    Close();
    return Status::kTransportError;
  }
  char buf[1 << 16];
  for (;;) {
    std::string perr;
    const FrameParser::Status st = parser_.Next(reply, &perr);
    if (st == FrameParser::Status::kFrame) {
      if (reply->seq != frame.seq) continue;  // stale frame: not ours
      return Status::kOk;
    }
    if (st == FrameParser::Status::kBad) {
      if (error != nullptr) *error = "protocol error from server: " + perr;
      Close();
      return Status::kTransportError;
    }
    const long n = ReadSome(fd_, buf, sizeof buf);
    if (n <= 0) {
      if (error != nullptr) {
        *error = n == 0 ? "server closed the connection" : "read failed";
      }
      Close();
      return Status::kTransportError;
    }
    parser_.Feed(buf, static_cast<std::size_t>(n));
  }
}

Client::Status Client::Call(const service::PlacementRequest& request,
                            std::uint32_t deadline_ms,
                            service::PlacementResult* result,
                            ErrorCode* error_code, std::string* error) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.seq = next_seq_++;
  service::WireWriter w;
  w.U32(deadline_ms);
  // v2 extension: the caller's trace context ({0,0} when untraced).
  AppendTraceContext(obs::CurrentTraceContext(), &w);
  service::EncodeRequest(request, &w);
  frame.payload = w.Take();

  Frame reply;
  const Status st = Transact(frame, &reply, error);
  if (st != Status::kOk) return st;

  if (reply.type == FrameType::kError) {
    ErrorCode code;
    std::string message;
    if (!DecodeErrorPayload(reply.payload, &code, &message)) {
      if (error != nullptr) *error = "undecodable error frame";
      Close();
      return Status::kTransportError;
    }
    if (error_code != nullptr) *error_code = code;
    if (error != nullptr) *error = message;
    return Status::kRemoteError;
  }
  if (reply.type != FrameType::kResponse) {
    if (error != nullptr) *error = "unexpected reply frame type";
    Close();
    return Status::kTransportError;
  }
  service::WireReader r(reply.payload);
  if (reply.version >= 2) {
    // v2 responses lead with the echoed trace context; the ids are
    // informational here (the client already holds its own context).
    std::uint64_t trace_id = 0, server_span_id = 0;
    r.U64(&trace_id);
    r.U64(&server_span_id);
  }
  if (!service::DecodeResult(&r, result) || r.remaining() != 0) {
    if (error != nullptr) *error = "undecodable response payload";
    Close();
    return Status::kTransportError;
  }
  return Status::kOk;
}

Client::Status Client::Ping(std::string* error, PongPayload* pong) {
  if (pong != nullptr) *pong = PongPayload{};
  Frame frame;
  frame.type = FrameType::kPing;
  frame.seq = next_seq_++;
  Frame reply;
  const Status st = Transact(frame, &reply, error);
  if (st != Status::kOk) return st;
  if (reply.type == FrameType::kPong) {
    if (pong != nullptr && reply.version >= 2 && !reply.payload.empty()) {
      if (!DecodePongPayload(reply.payload, pong)) {
        if (error != nullptr) *error = "undecodable pong payload";
        Close();
        return Status::kTransportError;
      }
    }
    return Status::kOk;
  }
  if (reply.type == FrameType::kError) {
    ErrorCode code;
    std::string message;
    if (DecodeErrorPayload(reply.payload, &code, &message)) {
      if (error != nullptr) *error = message;
      return Status::kRemoteError;
    }
  }
  if (error != nullptr) *error = "unexpected reply to ping";
  Close();
  return Status::kTransportError;
}

Client::Status Client::Forward(const Frame& frame, Frame* reply,
                               std::string* error) {
  return Transact(frame, reply, error);
}

Client::Status Client::FetchMetrics(MetricsReplyPayload* reply,
                                    ErrorCode* error_code,
                                    std::string* error) {
  Frame frame;
  frame.type = FrameType::kMetrics;
  frame.seq = next_seq_++;
  Frame raw;
  const Status st = Transact(frame, &raw, error);
  if (st != Status::kOk) return st;
  if (raw.type == FrameType::kError) {
    ErrorCode code;
    std::string message;
    if (DecodeErrorPayload(raw.payload, &code, &message)) {
      if (error_code != nullptr) *error_code = code;
      if (error != nullptr) *error = message;
      return Status::kRemoteError;
    }
    if (error != nullptr) *error = "undecodable error frame";
    Close();
    return Status::kTransportError;
  }
  if (raw.type != FrameType::kMetricsReply ||
      !DecodeMetricsReplyPayload(raw.payload, reply)) {
    if (error != nullptr) *error = "unexpected reply to metrics pull";
    Close();
    return Status::kTransportError;
  }
  return Status::kOk;
}

bool EstimatePeerClock(Client& client, int samples, obs::PeerClock* out,
                       std::string* error) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
  if (rec.NowNs() == 0) {
    if (error != nullptr) {
      *error = "local trace recorder not started; no clock to sync against";
    }
    return false;
  }
  std::vector<obs::ClockSample> collected;
  PongPayload last_pong;
  for (int i = 0; i < samples; ++i) {
    obs::ClockSample sample;
    PongPayload pong;
    sample.local_send_ns = rec.NowNs();
    if (client.Ping(error, &pong) != Client::Status::kOk) return false;
    sample.local_recv_ns = rec.NowNs();
    if (pong.pid == 0) {
      if (error != nullptr) {
        *error = "peer answered a v1 pong (no clock reading)";
      }
      return false;
    }
    sample.peer_now_ns = pong.now_ns;
    collected.push_back(sample);
    last_pong = pong;
  }
  out->name = last_pong.process_name;
  out->pid = last_pong.pid;
  out->offset_ns = obs::EstimateClockOffset(collected);
  return true;
}

}  // namespace merch::net
