#include "net/client.h"

#include "net/socket.h"
#include "service/serialization.h"

namespace merch::net {

bool Client::Connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  Close();
  fd_ = ConnectTo(host, port, error);
  if (fd_ < 0) return false;
  parser_ = FrameParser();
  return true;
}

void Client::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

Client::Status Client::Transact(const Frame& frame, Frame* reply,
                                std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return Status::kTransportError;
  }
  const std::string bytes = EncodeFrame(frame);
  if (!WriteAll(fd_, bytes.data(), bytes.size())) {
    if (error != nullptr) *error = "write failed (server closed?)";
    Close();
    return Status::kTransportError;
  }
  char buf[1 << 16];
  for (;;) {
    std::string perr;
    const FrameParser::Status st = parser_.Next(reply, &perr);
    if (st == FrameParser::Status::kFrame) {
      if (reply->seq != frame.seq) continue;  // stale frame: not ours
      return Status::kOk;
    }
    if (st == FrameParser::Status::kBad) {
      if (error != nullptr) *error = "protocol error from server: " + perr;
      Close();
      return Status::kTransportError;
    }
    const long n = ReadSome(fd_, buf, sizeof buf);
    if (n <= 0) {
      if (error != nullptr) {
        *error = n == 0 ? "server closed the connection" : "read failed";
      }
      Close();
      return Status::kTransportError;
    }
    parser_.Feed(buf, static_cast<std::size_t>(n));
  }
}

Client::Status Client::Call(const service::PlacementRequest& request,
                            std::uint32_t deadline_ms,
                            service::PlacementResult* result,
                            ErrorCode* error_code, std::string* error) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.seq = next_seq_++;
  service::WireWriter w;
  w.U32(deadline_ms);
  service::EncodeRequest(request, &w);
  frame.payload = w.Take();

  Frame reply;
  const Status st = Transact(frame, &reply, error);
  if (st != Status::kOk) return st;

  if (reply.type == FrameType::kError) {
    ErrorCode code;
    std::string message;
    if (!DecodeErrorPayload(reply.payload, &code, &message)) {
      if (error != nullptr) *error = "undecodable error frame";
      Close();
      return Status::kTransportError;
    }
    if (error_code != nullptr) *error_code = code;
    if (error != nullptr) *error = message;
    return Status::kRemoteError;
  }
  if (reply.type != FrameType::kResponse) {
    if (error != nullptr) *error = "unexpected reply frame type";
    Close();
    return Status::kTransportError;
  }
  service::WireReader r(reply.payload);
  if (!service::DecodeResult(&r, result) || r.remaining() != 0) {
    if (error != nullptr) *error = "undecodable response payload";
    Close();
    return Status::kTransportError;
  }
  return Status::kOk;
}

Client::Status Client::Ping(std::string* error) {
  Frame frame;
  frame.type = FrameType::kPing;
  frame.seq = next_seq_++;
  Frame reply;
  const Status st = Transact(frame, &reply, error);
  if (st != Status::kOk) return st;
  if (reply.type == FrameType::kPong) return Status::kOk;
  if (reply.type == FrameType::kError) {
    ErrorCode code;
    std::string message;
    if (DecodeErrorPayload(reply.payload, &code, &message)) {
      if (error != nullptr) *error = message;
      return Status::kRemoteError;
    }
  }
  if (error != nullptr) *error = "unexpected reply to ping";
  Close();
  return Status::kTransportError;
}

Client::Status Client::Forward(const Frame& frame, Frame* reply,
                               std::string* error) {
  return Transact(frame, reply, error);
}

}  // namespace merch::net
