#include "net/router.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/log.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/distributed/context.h"
#include "obs/distributed/federation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/request.h"
#include "service/serialization.h"
#include "service/thread_pool.h"

namespace merch::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Read a decimal port from `path`; 0 until the worker has written it.
std::uint16_t ReadPortFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  char buf[16] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  if (n == 0) return 0;
  const long port = std::atol(buf);
  return (port > 0 && port <= 65535) ? static_cast<std::uint16_t>(port) : 0;
}

}  // namespace

std::uint64_t Fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct ShardRouter::Impl {
  RouterConfig cfg;

  /// One spawned `merchd --listen` process. `generation` bumps on every
  /// respawn so forwarders know their cached connection is stale.
  struct Worker {
    int pid = -1;
    std::uint16_t port = 0;
    std::uint64_t generation = 0;
    std::string port_file;
    obs::PeerClock clock;  // pid == 0 until a ping sync succeeded
  };

  mutable std::mutex mu;  // guards workers + stats + client_fds
  std::vector<Worker> workers;
  RouterStats stats;
  std::unordered_set<int> client_fds;

  int listen_fd = -1;
  std::uint16_t port = 0;
  std::atomic<bool> stopping{false};
  bool started = false;
  bool stopped = false;
  std::thread accept_thread;
  std::thread monitor_thread;
  std::unique_ptr<service::ThreadPool> forwarders;
  std::uint64_t spawn_counter = 0;

  ~Impl() {
    for (Worker& w : workers) {
      if (!w.port_file.empty()) ::unlink(w.port_file.c_str());
    }
  }

  void Bump(std::uint64_t RouterStats::* field) {
    std::lock_guard<std::mutex> lock(mu);
    stats.*field += 1;
  }

  bool SpawnWorker(std::size_t shard, std::string* error) {
    Worker& w = workers[shard];
    if (!w.port_file.empty()) ::unlink(w.port_file.c_str());
    char path[128];
    std::snprintf(path, sizeof path, "/tmp/merchd.router.%d.s%zu.g%llu.port",
                  static_cast<int>(::getpid()), shard,
                  static_cast<unsigned long long>(spawn_counter++));
    w.port_file = path;

    std::vector<std::string> argv_s = cfg.worker_command;
    argv_s.insert(argv_s.end(), {"--listen", "--port", "0", "--port-file",
                                 w.port_file});
    if (!cfg.worker_snapshot_save_prefix.empty()) {
      argv_s.insert(argv_s.end(),
                    {"--snapshot-save", cfg.worker_snapshot_save_prefix +
                                            ".shard" + std::to_string(shard)});
    }
    if (!cfg.worker_trace_prefix.empty()) {
      // Distributed tracing: each shard records its own timeline and
      // identifies itself, so trace_merge can stitch all exports.
      argv_s.insert(argv_s.end(),
                    {"--process-name", "shard" + std::to_string(shard),
                     "--trace", cfg.worker_trace_prefix + ".shard" +
                                    std::to_string(shard) + ".json"});
    }
    std::vector<char*> argv;
    argv.reserve(argv_s.size() + 1);
    for (std::string& a : argv_s) argv.push_back(a.data());
    argv.push_back(nullptr);

    const int pid = ::fork();
    if (pid < 0) {
      if (error != nullptr) *error = "fork failed";
      return false;
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      // exec failed: nothing sane to do in the child but report and die.
      std::fprintf(stderr, "merchd router: cannot exec '%s': %s\n", argv[0],
                   std::strerror(errno));
      ::_exit(127);
    }
    w.pid = pid;
    w.port = 0;
    ++w.generation;

    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               cfg.worker_start_timeout_seconds));
    while (Clock::now() < deadline) {
      const std::uint16_t p = ReadPortFile(w.port_file);
      if (p != 0) {
        w.port = p;
        MERCH_LOG(kInfo) << "router: shard " << shard << " up (pid " << pid
                         << ", port " << p << ")";
        return true;
      }
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        w.pid = -1;
        if (error != nullptr) {
          *error = "worker for shard " + std::to_string(shard) +
                   " exited during startup";
        }
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (error != nullptr) {
      *error = "worker for shard " + std::to_string(shard) +
               " did not publish a port in time";
    }
    return false;
  }

  /// Snapshot of (port, generation) for a shard, for forwarders.
  std::pair<std::uint16_t, std::uint64_t> ShardEndpoint(std::size_t shard) {
    std::lock_guard<std::mutex> lock(mu);
    return {workers[shard].port, workers[shard].generation};
  }

  /// Ping-sync one worker's trace clock against the local recorder (the
  /// minimum-RTT sample dates the worker clock; see obs/distributed).
  /// Skipped when the local recorder is not running — there is no clock
  /// to measure against; any stale estimate is cleared either way.
  void SyncWorkerClock(std::size_t shard) {
    std::uint16_t wport;
    {
      std::lock_guard<std::mutex> lock(mu);
      workers[shard].clock = obs::PeerClock{};
      wport = workers[shard].port;
    }
    if (wport == 0 || !obs::TraceRecorder::Instance().enabled()) return;
    Client client;
    std::string err;
    obs::PeerClock clock;
    if (!client.Connect(cfg.host, wport, &err) ||
        !EstimatePeerClock(client, cfg.clock_sync_samples, &clock, &err)) {
      MERCH_LOG(kWarn) << "router: clock sync with shard " << shard
                       << " failed: " << err;
      return;
    }
    MERCH_LOG(kInfo) << "router: shard " << shard << " clock offset "
                     << clock.offset_ns << "ns (pid " << clock.pid << ")";
    std::lock_guard<std::mutex> lock(mu);
    workers[shard].clock = clock;
  }

  /// One fleet-level export: the router's own registry plus a live pull
  /// from every shard, merged by obs::FederateMetrics.
  bool FederatedPrometheus(std::string* out, std::string* error) {
    std::vector<obs::ShardMetrics> shards;
    obs::ShardMetrics own;
    own.label = cfg.process_name;
    if (!obs::ParsePrometheusText(
            obs::MetricsRegistry::Instance().PrometheusText(), &own.metrics,
            error)) {
      if (error != nullptr) *error = "router export: " + *error;
      return false;
    }
    shards.push_back(std::move(own));
    for (std::size_t shard = 0; shard < workers.size(); ++shard) {
      const auto [wport, wgen] = ShardEndpoint(shard);
      (void)wgen;
      const std::string label = "shard" + std::to_string(shard);
      std::string err;
      Client client;
      MetricsReplyPayload reply;
      ErrorCode code;
      if (wport == 0 || !client.Connect(cfg.host, wport, &err) ||
          client.FetchMetrics(&reply, &code, &err) != Client::Status::kOk) {
        if (error != nullptr) {
          *error = label + " unreachable for metrics pull" +
                   (err.empty() ? "" : ": " + err);
        }
        return false;
      }
      obs::ShardMetrics sm;
      sm.label = label;
      if (!obs::ParsePrometheusText(reply.prometheus_text, &sm.metrics,
                                    error)) {
        if (error != nullptr) *error = label + " export: " + *error;
        return false;
      }
      shards.push_back(std::move(sm));
    }
    return obs::FederateMetrics(shards, out, error);
  }

  void MonitorLoop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      for (std::size_t shard = 0; shard < workers.size(); ++shard) {
        int pid;
        {
          std::lock_guard<std::mutex> lock(mu);
          pid = workers[shard].pid;
        }
        if (pid <= 0) continue;
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) != pid) continue;
        if (stopping.load(std::memory_order_relaxed)) return;
        MERCH_LOG(kWarn) << "router: shard " << shard << " worker (pid "
                         << pid << ") died; "
                         << (cfg.restart_workers ? "restarting"
                                                 : "not restarting");
        {
          std::lock_guard<std::mutex> lock(mu);
          workers[shard].pid = -1;
          workers[shard].port = 0;
        }
        if (!cfg.restart_workers) continue;
        std::string err;
        bool respawned;
        {
          std::lock_guard<std::mutex> lock(mu);
          respawned = SpawnWorker(shard, &err);
          if (respawned) stats.restarts += 1;
        }
        if (respawned) {
          MERCH_METRIC_COUNT("merch_router_restarts_total", 1);
          SyncWorkerClock(shard);  // the respawned worker's clock is new
        } else {
          MERCH_LOG(kError) << "router: respawn of shard " << shard
                            << " failed: " << err;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  /// Serve one client connection end to end (runs on a forwarder thread).
  void ServeClient(int fd) {
    FrameParser parser(cfg.max_frame_bytes);
    // Lazy per-shard connections; generation-stamped so worker restarts
    // trigger a reconnect instead of writes into a dead socket.
    std::vector<std::unique_ptr<Client>> shard_clients(workers.size());
    std::vector<std::uint64_t> shard_generations(workers.size(), 0);

    char buf[1 << 16];
    bool alive = true;
    while (alive && !stopping.load(std::memory_order_relaxed)) {
      const long n = ReadSome(fd, buf, sizeof buf);
      if (n <= 0) break;
      parser.Feed(buf, static_cast<std::size_t>(n));
      for (;;) {
        Frame frame;
        std::string perr;
        bool bad_version = false;
        const FrameParser::Status st =
            parser.Next(&frame, &perr, &bad_version);
        if (st == FrameParser::Status::kNeedMore) break;
        if (st == FrameParser::Status::kBad) {
          Bump(&RouterStats::protocol_errors);
          const Frame err{FrameType::kError, 0,
                          EncodeErrorPayload(
                              bad_version ? ErrorCode::kUnsupportedVersion
                                          : ErrorCode::kMalformed,
                              perr)};
          const std::string bytes = EncodeFrame(err);
          WriteAll(fd, bytes.data(), bytes.size());
          alive = false;
          break;
        }
        if (!HandleClientFrame(fd, frame, shard_clients,
                               shard_generations)) {
          alive = false;
          break;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      client_fds.erase(fd);
    }
    CloseFd(fd);
    MERCH_METRIC_GAUGE_ADD("merch_router_active_connections", -1);
  }

  bool SendFrame(int fd, const Frame& frame) {
    const std::string bytes = EncodeFrame(frame);
    return WriteAll(fd, bytes.data(), bytes.size());
  }

  bool HandleClientFrame(int fd, Frame& frame,
                         std::vector<std::unique_ptr<Client>>& shard_clients,
                         std::vector<std::uint64_t>& shard_generations) {
    if (frame.type == FrameType::kPing) {
      std::string payload;
      if (frame.version >= 2) {
        PongPayload pong;
        pong.now_ns = obs::TraceRecorder::Instance().NowNs();
        pong.pid = static_cast<std::uint64_t>(::getpid());
        pong.process_name = cfg.process_name;
        payload = EncodePongPayload(pong);
      }
      return SendFrame(fd, Frame{FrameType::kPong, frame.seq,
                                 std::move(payload), frame.version});
    }
    if (frame.type == FrameType::kMetrics) {
      // Metrics pull against the router aggregates the whole fleet.
      std::string text, merr;
      if (!FederatedPrometheus(&text, &merr)) {
        return SendFrame(fd, Frame{FrameType::kError, frame.seq,
                                   EncodeErrorPayload(ErrorCode::kInternal,
                                                      merr),
                                   frame.version});
      }
      MetricsReplyPayload reply;
      reply.process_name = cfg.process_name;
      reply.pid = static_cast<std::uint64_t>(::getpid());
      reply.prometheus_text = std::move(text);
      return SendFrame(fd, Frame{FrameType::kMetricsReply, frame.seq,
                                 EncodeMetricsReplyPayload(reply),
                                 frame.version});
    }
    if (frame.type != FrameType::kRequest) {
      Bump(&RouterStats::protocol_errors);
      return SendFrame(fd, Frame{FrameType::kError, frame.seq,
                                 EncodeErrorPayload(
                                     ErrorCode::kMalformed,
                                     "unexpected frame type from client"),
                                 frame.version});
    }

    // Decode just enough to shard: the canonical key (v2 payloads carry
    // the trace context between deadline and request). The worker re-runs
    // full validation; invalid requests are answered locally with the same
    // error-carrying PlacementResult the in-process service produces.
    service::WireReader r(frame.payload);
    std::uint32_t deadline_ms = 0;
    obs::TraceContext ctx;
    service::PlacementRequest req;
    r.U32(&deadline_ms);
    if (frame.version >= 2) ReadTraceContext(&r, &ctx);
    if (!service::DecodeRequest(&r, &req) || r.remaining() != 0) {
      Bump(&RouterStats::protocol_errors);
      return SendFrame(fd, Frame{FrameType::kError, frame.seq,
                                 EncodeErrorPayload(
                                     ErrorCode::kMalformed,
                                     "undecodable request payload"),
                                 frame.version});
    }
    service::PlacementRequest canonical = req;
    if (const std::string cerr = service::CanonicalizeRequest(canonical);
        !cerr.empty()) {
      service::PlacementResult bad;
      bad.request = req;
      bad.error = cerr;
      service::WireWriter w;
      if (frame.version >= 2) {
        w.U64(ctx.trace_id);
        w.U64(0);  // answered locally: no server span
      }
      service::EncodeResult(bad, &w);
      return SendFrame(fd, Frame{FrameType::kResponse, frame.seq, w.Take(),
                                 frame.version});
    }
    const std::size_t shard = static_cast<std::size_t>(
        Fnv1a64(service::CanonicalKey(canonical)) % workers.size());

    // The frame is relayed verbatim, so the client's trace context rides
    // through to the shard; the router's own forward span joins the same
    // trace via the scope installed here.
    obs::TraceContextScope scope(ctx);
    obs::TraceRecorder& rec = obs::TraceRecorder::Instance();
    const std::uint64_t fwd_t0 =
        ctx.valid() && rec.enabled() ? rec.NowNs() : 0;

    Frame reply;
    if (ForwardToShard(shard, frame, shard_clients, shard_generations,
                       &reply)) {
      Bump(&RouterStats::forwarded);
      MERCH_METRIC_COUNT("merch_router_forwarded_total", 1);
      if (fwd_t0 != 0 && rec.enabled()) {
        const std::uint64_t now = rec.NowNs();
        rec.RecordSpan(obs::Category::kNet, "router.forward", fwd_t0,
                       now > fwd_t0 ? now - fwd_t0 : 0, "shard",
                       static_cast<std::int64_t>(shard));
      }
      return SendFrame(fd, reply);
    }
    Bump(&RouterStats::worker_errors);
    MERCH_METRIC_COUNT("merch_router_worker_errors_total", 1);
    return SendFrame(
        fd, Frame{FrameType::kError, frame.seq,
                  EncodeErrorPayload(ErrorCode::kUnavailable,
                                     "shard worker unavailable, retry "
                                     "later"),
                  frame.version});
  }

  bool ForwardToShard(std::size_t shard, const Frame& frame,
                      std::vector<std::unique_ptr<Client>>& shard_clients,
                      std::vector<std::uint64_t>& shard_generations,
                      Frame* reply) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      const auto [wport, wgen] = ShardEndpoint(shard);
      if (wport == 0) {
        // Worker is down; give the monitor a moment on the retry attempt.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      std::unique_ptr<Client>& client = shard_clients[shard];
      if (client == nullptr || !client->connected() ||
          shard_generations[shard] != wgen) {
        client = std::make_unique<Client>();
        std::string cerr;
        if (!client->Connect(cfg.host, wport, &cerr)) {
          client.reset();
          continue;
        }
        shard_generations[shard] = wgen;
      }
      std::string ferr;
      if (client->Forward(frame, reply, &ferr) == Client::Status::kOk) {
        return true;
      }
      client.reset();  // dead connection; retry reconnects
    }
    return false;
  }

  void AcceptLoop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) continue;
      if (stopping.load(std::memory_order_relaxed)) {
        CloseFd(fd);
        break;
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        stats.connections += 1;
        client_fds.insert(fd);
      }
      MERCH_METRIC_COUNT("merch_router_connections_total", 1);
      MERCH_METRIC_GAUGE_ADD("merch_router_active_connections", 1);
      if (!forwarders->TrySubmit([this, fd] { ServeClient(fd); })) {
        // Connection-level shed: the forwarder pool is saturated.
        const Frame refuse{FrameType::kError, 0,
                           EncodeErrorPayload(ErrorCode::kRetryLater,
                                              "router connection limit "
                                              "reached, retry later")};
        const std::string bytes = EncodeFrame(refuse);
        WriteAll(fd, bytes.data(), bytes.size());
        {
          std::lock_guard<std::mutex> lock(mu);
          stats.refused_connections += 1;
          client_fds.erase(fd);
        }
        MERCH_METRIC_COUNT("merch_router_refused_connections_total", 1);
        MERCH_METRIC_GAUGE_ADD("merch_router_active_connections", -1);
        CloseFd(fd);
      }
    }
  }
};

ShardRouter::ShardRouter(RouterConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->cfg = std::move(config);
  if (impl_->cfg.shards == 0) impl_->cfg.shards = 1;
}

ShardRouter::~ShardRouter() { Stop(); }

bool ShardRouter::Start(std::string* error) {
  Impl& im = *impl_;
  if (im.started) return true;
  if (im.cfg.worker_command.empty()) {
    if (error != nullptr) *error = "router needs a worker command";
    return false;
  }
  im.workers.resize(im.cfg.shards);
  for (std::size_t shard = 0; shard < im.cfg.shards; ++shard) {
    bool ok;
    {
      std::lock_guard<std::mutex> lock(im.mu);
      ok = im.SpawnWorker(shard, error);
    }
    if (!ok) {
      Stop();
      return false;
    }
    im.SyncWorkerClock(shard);
  }
  im.listen_fd = ListenOn(im.cfg.host, im.cfg.port, &im.port, error);
  if (im.listen_fd < 0) {
    Stop();
    return false;
  }
  im.forwarders = std::make_unique<service::ThreadPool>(
      im.cfg.max_client_connections, im.cfg.max_client_connections);
  im.started = true;
  im.accept_thread = std::thread([&im] { im.AcceptLoop(); });
  im.monitor_thread = std::thread([&im] { im.MonitorLoop(); });
  MERCH_LOG(kInfo) << "router: listening on " << im.cfg.host << ":"
                   << im.port << " with " << im.cfg.shards << " shards";
  return true;
}

std::uint16_t ShardRouter::port() const { return impl_->port; }

void ShardRouter::Stop() {
  Impl& im = *impl_;
  if (im.stopped) return;
  im.stopped = true;
  im.stopping.store(true, std::memory_order_relaxed);
  if (im.listen_fd >= 0) {
    // Nudge the accept poll by closing the fd it watches.
    const int fd = im.listen_fd;
    im.listen_fd = -1;
    CloseFd(fd);
  }
  if (im.accept_thread.joinable()) im.accept_thread.join();
  {
    // Force forwarder reads to return so handler jobs drain.
    std::lock_guard<std::mutex> lock(im.mu);
    for (int fd : im.client_fds) ::shutdown(fd, SHUT_RDWR);
  }
  if (im.forwarders != nullptr) im.forwarders->Shutdown();
  if (im.monitor_thread.joinable()) im.monitor_thread.join();

  // Graceful worker shutdown: SIGTERM lets each worker drain and save its
  // snapshot; escalate to SIGKILL only if one wedges.
  for (Impl::Worker& w : im.workers) {
    if (w.pid > 0) ::kill(w.pid, SIGTERM);
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(10);
  for (Impl::Worker& w : im.workers) {
    if (w.pid <= 0) continue;
    int status = 0;
    for (;;) {
      if (::waitpid(w.pid, &status, WNOHANG) == w.pid) break;
      if (Clock::now() >= deadline) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    w.pid = -1;
  }
}

RouterStats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

std::vector<int> ShardRouter::worker_pids() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<int> pids;
  pids.reserve(impl_->workers.size());
  for (const Impl::Worker& w : impl_->workers) pids.push_back(w.pid);
  return pids;
}

std::vector<std::uint16_t> ShardRouter::worker_ports() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::uint16_t> ports;
  ports.reserve(impl_->workers.size());
  for (const Impl::Worker& w : impl_->workers) ports.push_back(w.port);
  return ports;
}

std::vector<obs::PeerClock> ShardRouter::worker_clocks() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<obs::PeerClock> clocks;
  clocks.reserve(impl_->workers.size());
  for (const Impl::Worker& w : impl_->workers) clocks.push_back(w.clock);
  return clocks;
}

bool ShardRouter::FederatedPrometheus(std::string* out, std::string* error) {
  return impl_->FederatedPrometheus(out, error);
}

}  // namespace merch::net
