#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

namespace merch::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool ParseAddr(const std::string& host, std::uint16_t port,
               sockaddr_in* addr, std::string* error) {
  std::memset(addr, 0, sizeof *addr);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  if (inet_pton(AF_INET, h, &addr->sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad IPv4 address '" + host + "' (hostnames not supported)";
    }
    return false;
  }
  return true;
}

int NewTcpSocket(std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0 && error != nullptr) *error = Errno("socket");
  return fd;
}

}  // namespace

int ListenOn(const std::string& host, std::uint16_t port,
             std::uint16_t* actual_port, std::string* error) {
  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr, error)) return -1;
  int fd = NewTcpSocket(error);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) *error = Errno("bind");
    CloseFd(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    if (error != nullptr) *error = Errno("listen");
    CloseFd(fd);
    return -1;
  }
  if (actual_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      if (error != nullptr) *error = Errno("getsockname");
      CloseFd(fd);
      return -1;
    }
    *actual_port = ntohs(bound.sin_port);
  }
  return fd;
}

int ConnectTo(const std::string& host, std::uint16_t port,
              std::string* error) {
  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr, error)) return -1;
  int fd = NewTcpSocket(error);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) *error = Errno("connect");
    CloseFd(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

long ReadSome(int fd, char* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::read(fd, data, size);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

namespace {

std::atomic<bool> g_shutdown_requested{false};
int g_shutdown_pipe[2] = {-1, -1};

extern "C" void MerchShutdownHandler(int) {
  // Async-signal-safe: one flag store + one pipe write.
  g_shutdown_requested.store(true, std::memory_order_relaxed);
  if (g_shutdown_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
  }
}

}  // namespace

void ShutdownSignal::Install() {
  static bool installed = [] {
    if (::pipe(g_shutdown_pipe) != 0) {
      g_shutdown_pipe[0] = g_shutdown_pipe[1] = -1;
    } else {
      SetNonBlocking(g_shutdown_pipe[1]);
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = MerchShutdownHandler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    // A peer that vanishes mid-write must surface as a write error, not
    // kill the process.
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

bool ShutdownSignal::requested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

int ShutdownSignal::fd() { return g_shutdown_pipe[0]; }

void ShutdownSignal::ResetForTest() {
  g_shutdown_requested.store(false, std::memory_order_relaxed);
  if (g_shutdown_pipe[0] >= 0) {
    SetNonBlocking(g_shutdown_pipe[0]);
    char buf[16];
    while (::read(g_shutdown_pipe[0], buf, sizeof buf) > 0) {
    }
  }
}

}  // namespace merch::net
