#include "net/frame.h"

#include "service/serialization.h"

namespace merch::net {

namespace {

constexpr char kMagic[4] = {'M', 'R', 'C', 'H'};

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformed:
      return "MALFORMED";
    case ErrorCode::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
    case ErrorCode::kRetryLater:
      return "RETRY_LATER";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kShuttingDown:
      return "SHUTTING_DOWN";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "?";
}

void AppendFrame(const Frame& frame, std::string* out) {
  service::WireWriter w;
  for (char c : kMagic) w.U8(static_cast<std::uint8_t>(c));
  w.U16(frame.version);
  w.U8(static_cast<std::uint8_t>(frame.type));
  w.U8(0);  // reserved
  w.U32(frame.seq);
  w.U32(static_cast<std::uint32_t>(frame.payload.size()));
  out->append(w.bytes());
  out->append(frame.payload);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  AppendFrame(frame, &out);
  return out;
}

std::string EncodeErrorPayload(ErrorCode code, const std::string& message) {
  service::WireWriter w;
  w.U16(static_cast<std::uint16_t>(code));
  w.Str(message);
  return w.Take();
}

bool DecodeErrorPayload(const std::string& payload, ErrorCode* code,
                        std::string* message) {
  service::WireReader r(payload);
  std::uint16_t raw = 0;
  r.U16(&raw);
  r.Str(message);
  if (!r.ok() || r.remaining() != 0) return false;
  *code = static_cast<ErrorCode>(raw);
  return true;
}

FrameParser::Status FrameParser::Next(Frame* out, std::string* error,
                                      bool* bad_version) {
  if (bad_version != nullptr) *bad_version = false;
  if (buf_.size() < kFrameHeaderBytes) return Status::kNeedMore;

  service::WireReader r(buf_.data(), kFrameHeaderBytes);
  std::uint8_t magic[4];
  for (std::uint8_t& m : magic) r.U8(&m);
  std::uint16_t version = 0;
  std::uint8_t type = 0, reserved = 0;
  std::uint32_t seq = 0, payload_len = 0;
  r.U16(&version);
  r.U8(&type);
  r.U8(&reserved);
  r.U32(&seq);
  r.U32(&payload_len);

  for (std::size_t i = 0; i < 4; ++i) {
    if (static_cast<char>(magic[i]) != kMagic[i]) {
      if (error != nullptr) *error = "bad frame magic";
      return Status::kBad;
    }
  }
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    if (error != nullptr) {
      *error = "unsupported protocol version " + std::to_string(version);
    }
    if (bad_version != nullptr) *bad_version = true;
    return Status::kBad;
  }
  if (reserved != 0) {
    if (error != nullptr) *error = "nonzero reserved header byte";
    return Status::kBad;
  }
  // The valid type range depends on the frame's own version: the
  // metrics frames only exist from v2 on.
  const std::uint8_t max_type =
      version >= 2 ? static_cast<std::uint8_t>(FrameType::kMetricsReply)
                   : static_cast<std::uint8_t>(FrameType::kPong);
  if (type < static_cast<std::uint8_t>(FrameType::kRequest) ||
      type > max_type) {
    if (error != nullptr) {
      *error = "unknown frame type " + std::to_string(type);
    }
    return Status::kBad;
  }
  if (payload_len > max_frame_bytes_) {
    if (error != nullptr) {
      *error = "frame payload of " + std::to_string(payload_len) +
               " bytes exceeds the " + std::to_string(max_frame_bytes_) +
               "-byte limit";
    }
    return Status::kBad;
  }
  const std::size_t total = kFrameHeaderBytes + payload_len;
  if (buf_.size() < total) return Status::kNeedMore;

  out->type = static_cast<FrameType>(type);
  out->seq = seq;
  out->version = version;
  out->payload.assign(buf_, kFrameHeaderBytes, payload_len);
  buf_.erase(0, total);
  return Status::kFrame;
}

void AppendTraceContext(const obs::TraceContext& ctx,
                        service::WireWriter* w) {
  w->U64(ctx.trace_id);
  w->U64(ctx.parent_span_id);
}

bool ReadTraceContext(service::WireReader* r, obs::TraceContext* ctx) {
  r->U64(&ctx->trace_id);
  r->U64(&ctx->parent_span_id);
  return r->ok();
}

std::string EncodePongPayload(const PongPayload& pong) {
  service::WireWriter w;
  w.U64(pong.now_ns);
  w.U64(pong.pid);
  w.Str(pong.process_name);
  return w.Take();
}

bool DecodePongPayload(const std::string& payload, PongPayload* pong) {
  service::WireReader r(payload);
  r.U64(&pong->now_ns);
  r.U64(&pong->pid);
  r.Str(&pong->process_name);
  return r.ok() && r.remaining() == 0;
}

std::string EncodeMetricsReplyPayload(const MetricsReplyPayload& reply) {
  service::WireWriter w;
  w.Str(reply.process_name);
  w.U64(reply.pid);
  w.Str(reply.prometheus_text);
  return w.Take();
}

bool DecodeMetricsReplyPayload(const std::string& payload,
                               MetricsReplyPayload* reply) {
  service::WireReader r(payload);
  r.Str(&reply->process_name);
  r.U64(&reply->pid);
  r.Str(&reply->prometheus_text);
  return r.ok() && r.remaining() == 0;
}

}  // namespace merch::net
