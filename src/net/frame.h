// Wire-protocol framing for the networked placement service.
//
// Every message is one length-prefixed frame:
//
//   offset  size  field
//   0       4     magic "MRCH"
//   4       2     protocol version (u16, currently 1)
//   6       1     frame type (FrameType)
//   7       1     reserved (must be 0)
//   8       4     sequence id (u32, chosen by the client, echoed by the
//                 server so responses can be pipelined out of order)
//   12      4     payload length (u32, bounded by max_frame_bytes)
//   16      ...   payload (type-specific, see service/serialization.h)
//
// Payloads, by header version (the server echoes the request frame's
// version in its reply, so v1 clients keep working against a v2 server
// — the per-message version rule this header always promised):
//   v1 kRequest   u32 deadline_ms (0 = server default) + encoded
//                 PlacementRequest
//   v2 kRequest   u32 deadline_ms + u64 trace_id + u64 parent_span_id
//                 (both 0 = untraced) + encoded PlacementRequest
//   v1 kResponse  encoded PlacementResult
//   v2 kResponse  u64 trace_id + u64 server_span_id + encoded
//                 PlacementResult
//   kError        u16 ErrorCode + str message
//   kPing         empty
//   v1 kPong      empty
//   v2 kPong      u64 now_ns (sender's trace clock) + u64 pid +
//                 str process_name — the raw material for the
//                 clock-offset estimate behind tools/trace_merge
//   v2 kMetrics        empty (pull the peer's Prometheus export)
//   v2 kMetricsReply   str process_name + u64 pid + str prometheus_text
//
// Parsing is defensive end to end: a FrameParser fed truncated, oversized,
// or garbage bytes reports kBad with a diagnostic — it never reads out of
// bounds, never allocates more than the frame bound, and never aborts.
// Version mismatches are detected per frame (the header carries the
// version), so the v2 server answers v1 clients per message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/distributed/context.h"
#include "service/serialization.h"

namespace merch::net {

inline constexpr std::uint16_t kProtocolVersion = 2;
/// Oldest version still answerable. v1 frames carry no trace context and
/// get v1-shaped replies.
inline constexpr std::uint16_t kMinProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Default ceiling on a single frame's payload. Large enough for a result
/// with thousands of placements, small enough that a hostile length prefix
/// cannot drive an OOM.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  // v2-only frames: a v1 peer never sees them (the parser rejects them
  // on a v1 header).
  kMetrics = 6,       // pull the peer's Prometheus text export
  kMetricsReply = 7,  // the export, tagged with the peer's identity
};

/// Error-frame codes. kRetryLater is the load-shedding contract: the
/// request was well-formed but the server refused it under overload, and
/// the client may retry (with backoff) without changing anything.
enum class ErrorCode : std::uint16_t {
  kMalformed = 1,            // undecodable or semantically broken frame
  kUnsupportedVersion = 2,   // header version outside [kMin, kCurrent]
  kRetryLater = 3,           // admission control shed the request
  kTimeout = 4,              // per-request deadline expired server-side
  kInternal = 5,             // unexpected server-side failure
  kShuttingDown = 6,         // server is draining; no new work accepted
  kUnavailable = 7,          // shard worker unreachable (router only)
};

const char* ErrorCodeName(ErrorCode code);

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint32_t seq = 0;
  std::string payload;
  // Declared last with a default so pre-v2 aggregate initializers
  // ({type, seq, payload}) keep meaning "current protocol". Parsed
  // frames carry the version actually seen on the wire; replies echo it.
  std::uint16_t version = kProtocolVersion;
};

/// Serialize a frame (header + payload) into `out` (appended).
void AppendFrame(const Frame& frame, std::string* out);
std::string EncodeFrame(const Frame& frame);

/// Convenience error-frame payload codec.
std::string EncodeErrorPayload(ErrorCode code, const std::string& message);
bool DecodeErrorPayload(const std::string& payload, ErrorCode* code,
                        std::string* message);

/// The 16-byte trace context carried after deadline_ms in v2 kRequest
/// payloads ({0,0} = untraced).
void AppendTraceContext(const obs::TraceContext& ctx, service::WireWriter* w);
bool ReadTraceContext(service::WireReader* r, obs::TraceContext* ctx);

/// v2 kPong payload: the responder's trace-clock reading and identity.
struct PongPayload {
  std::uint64_t now_ns = 0;  // responder's TraceRecorder::NowNs()
  std::uint64_t pid = 0;
  std::string process_name;
};
std::string EncodePongPayload(const PongPayload& pong);
bool DecodePongPayload(const std::string& payload, PongPayload* pong);

/// kMetricsReply payload: one process's Prometheus export plus identity.
struct MetricsReplyPayload {
  std::string process_name;
  std::uint64_t pid = 0;
  std::string prometheus_text;
};
std::string EncodeMetricsReplyPayload(const MetricsReplyPayload& reply);
bool DecodeMetricsReplyPayload(const std::string& payload,
                               MetricsReplyPayload* reply);

/// Incremental frame decoder for a byte stream. Feed() appends received
/// bytes; Next() extracts complete frames until the buffer runs dry.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, std::size_t size) { buf_.append(data, size); }

  enum class Status {
    kFrame,     // *out holds the next complete frame
    kNeedMore,  // no complete frame buffered yet
    kBad,       // stream is broken (bad magic / reserved byte / oversized
                // length); the connection must be dropped
  };

  /// `bad_version` distinguishes a version mismatch (answerable with a
  /// kUnsupportedVersion error before closing) from stream corruption.
  Status Next(Frame* out, std::string* error, bool* bad_version = nullptr);

  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t max_frame_bytes_;
};

}  // namespace merch::net
