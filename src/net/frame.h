// Wire-protocol framing for the networked placement service.
//
// Every message is one length-prefixed frame:
//
//   offset  size  field
//   0       4     magic "MRCH"
//   4       2     protocol version (u16, currently 1)
//   6       1     frame type (FrameType)
//   7       1     reserved (must be 0)
//   8       4     sequence id (u32, chosen by the client, echoed by the
//                 server so responses can be pipelined out of order)
//   12      4     payload length (u32, bounded by max_frame_bytes)
//   16      ...   payload (type-specific, see service/serialization.h)
//
// Payloads:
//   kRequest   u32 deadline_ms (0 = server default) + encoded
//              PlacementRequest
//   kResponse  encoded PlacementResult
//   kError     u16 ErrorCode + str message
//   kPing      empty
//   kPong      empty
//
// Parsing is defensive end to end: a FrameParser fed truncated, oversized,
// or garbage bytes reports kBad with a diagnostic — it never reads out of
// bounds, never allocates more than the frame bound, and never aborts.
// Version mismatches are detected per frame (the header carries the
// version), so a future v2 server can answer v1 clients per message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace merch::net {

inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Default ceiling on a single frame's payload. Large enough for a result
/// with thousands of placements, small enough that a hostile length prefix
/// cannot drive an OOM.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
};

/// Error-frame codes. kRetryLater is the load-shedding contract: the
/// request was well-formed but the server refused it under overload, and
/// the client may retry (with backoff) without changing anything.
enum class ErrorCode : std::uint16_t {
  kMalformed = 1,            // undecodable or semantically broken frame
  kUnsupportedVersion = 2,   // header version != kProtocolVersion
  kRetryLater = 3,           // admission control shed the request
  kTimeout = 4,              // per-request deadline expired server-side
  kInternal = 5,             // unexpected server-side failure
  kShuttingDown = 6,         // server is draining; no new work accepted
  kUnavailable = 7,          // shard worker unreachable (router only)
};

const char* ErrorCodeName(ErrorCode code);

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint32_t seq = 0;
  std::string payload;
};

/// Serialize a frame (header + payload) into `out` (appended).
void AppendFrame(const Frame& frame, std::string* out);
std::string EncodeFrame(const Frame& frame);

/// Convenience error-frame payload codec.
std::string EncodeErrorPayload(ErrorCode code, const std::string& message);
bool DecodeErrorPayload(const std::string& payload, ErrorCode* code,
                        std::string* message);

/// Incremental frame decoder for a byte stream. Feed() appends received
/// bytes; Next() extracts complete frames until the buffer runs dry.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, std::size_t size) { buf_.append(data, size); }

  enum class Status {
    kFrame,     // *out holds the next complete frame
    kNeedMore,  // no complete frame buffered yet
    kBad,       // stream is broken (bad magic / reserved byte / oversized
                // length); the connection must be dropped
  };

  /// `bad_version` distinguishes a version mismatch (answerable with a
  /// kUnsupportedVersion error before closing) from stream corruption.
  Status Next(Frame* out, std::string* error, bool* bad_version = nullptr);

  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t max_frame_bytes_;
};

}  // namespace merch::net
