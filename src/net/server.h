// Networked placement service: a poll()-reactor TCP front-end over the
// in-process PlacementService.
//
// One reactor thread owns all socket I/O (accept, frame parsing, response
// writes, per-request deadlines); simulation compute stays on the
// PlacementService's bounded ThreadPool. Completed jobs hand their
// responses back to the reactor through a completion queue + wake pipe, so
// the reactor never blocks on compute and a slow simulation never stalls
// other connections.
//
// Admission control (the load-shedding contract):
//   - cache hits are always served (they cost no simulation),
//   - a simulation is admitted only while net-level in-flight count <
//     max_inflight AND the service pool backlog < max_queue_depth;
//     otherwise the server answers RETRY_LATER immediately,
//   - each admitted request carries a deadline (client-supplied, clamped
//     to max_deadline_ms; 0 means default_deadline_ms). If it expires
//     before the simulation completes, the client gets a TIMEOUT error and
//     the late result is dropped (the simulation still finishes and warms
//     the cache — a retry is typically a hit),
//   - connections beyond max_connections are refused with RETRY_LATER.
//
// Everything is surfaced through the obs metrics registry:
//   merch_net_connections_total / merch_net_active_connections
//   merch_net_requests_total / merch_net_responses_total
//   merch_net_shed_total / merch_net_timeout_total
//   merch_net_protocol_errors_total
//   merch_net_inflight (gauge), merch_net_request_seconds (histogram —
//   the end-to-end server-side latency SLO gate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "service/placement_service.h"

namespace merch::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; see PlacementServer::port()
  /// PlacementService knobs.
  std::size_t threads = 4;
  std::size_t cache_capacity = 4096;
  std::size_t queue_capacity = 1024;
  /// Admission control.
  std::size_t max_connections = 256;
  std::size_t max_inflight = 128;
  std::size_t max_queue_depth = 256;
  std::uint32_t default_deadline_ms = 30000;
  std::uint32_t max_deadline_ms = 120000;
  std::size_t max_frame_bytes = 4u << 20;
  /// Graceful-stop budget for in-flight simulations.
  double drain_timeout_seconds = 30.0;
  /// ResultCache snapshot paths (empty = disabled). Load happens in
  /// Start() (corrupt snapshots log a warning and start cold), save in
  /// Stop() after the drain.
  std::string snapshot_load;
  std::string snapshot_save;
  /// Identity reported in v2 pongs and kMetricsReply frames (and stitched
  /// into merged traces by tools/trace_merge).
  std::string process_name = "merchd";
};

struct ServerStats {
  std::uint64_t connections = 0;      // accepted
  std::uint64_t refused_connections = 0;
  std::uint64_t requests = 0;         // request frames decoded
  std::uint64_t responses = 0;        // kResponse frames queued
  std::uint64_t shed = 0;             // RETRY_LATER answers
  std::uint64_t timeouts = 0;         // TIMEOUT answers
  std::uint64_t protocol_errors = 0;  // bad frames / payloads
  std::uint64_t pings = 0;
};

class PlacementServer {
 public:
  explicit PlacementServer(ServerConfig config);

  /// Stops (gracefully) if still running.
  ~PlacementServer();

  PlacementServer(const PlacementServer&) = delete;
  PlacementServer& operator=(const PlacementServer&) = delete;

  /// Bind + listen + start the reactor. Returns false with `*error` set on
  /// bind failures; a corrupt cache snapshot only logs a warning.
  bool Start(std::string* error);

  /// The bound port (after Start); useful with config.port == 0.
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, answer new requests with
  /// SHUTTING_DOWN, wait up to drain_timeout_seconds for in-flight
  /// simulations, flush responses, drain the service pool, save the cache
  /// snapshot. Idempotent.
  void Stop();

  service::PlacementService& service() { return *service_; }
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<service::PlacementService> service_;
  std::unique_ptr<Impl> impl_;
  ServerConfig config_;
  std::uint16_t port_ = 0;
};

}  // namespace merch::net

