// Workload description consumed by the simulator engine.
//
// An application is a sequence of *regions* (parallel sections ending in a
// barrier, i.e. the synchronization points of paper Section 2). Each region
// runs one *task instance* per task; a task instance is a sequence of
// kernels touching registered data objects. Repeating a task across regions
// with different input sizes models the paper's "task instances with new
// inputs" (DMRG sweeps, SpGEMM main-loop iterations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/heat.h"
#include "trace/pattern.h"

namespace merch::sim {

/// A data object registered for HM management (what the application passes
/// to the LB_HM_config API in paper Section 4).
struct ObjectDecl {
  std::string name;
  std::uint64_t bytes = 0;
  /// Task that predominantly accesses it, or kInvalidTask when shared.
  TaskId owner = kInvalidTask;
  trace::HeatProfile heat = trace::HeatProfile::Uniform();
  /// How many times a typical kernel sweeps the object (temporal reuse,
  /// amortises cold misses when the object is cache-resident).
  double reuse_passes = 1.0;
};

/// One code region inside a task instance.
struct Kernel {
  std::string name;
  std::uint64_t instructions = 0;  // non-memory work
  double branch_fraction = 0.05;   // of instructions
  double vector_fraction = 0.20;   // of instructions
  std::vector<trace::ObjectAccess> accesses;
};

/// One task's program for one region (a task instance).
struct TaskProgram {
  TaskId task = 0;
  std::vector<Kernel> kernels;
};

/// A parallel section: all task instances start together and synchronize at
/// the end (implicit barrier).
struct Region {
  std::string name;
  std::vector<TaskProgram> tasks;
  /// Input sizes of this instance: active bytes per object (same length as
  /// Workload::objects). Drives the Merchandiser runtime's input-aware
  /// estimation (Eq. 1) and cosine-similarity scaling (Section 5.2).
  std::vector<std::uint64_t> active_bytes;
};

struct Workload {
  std::string name;
  std::vector<ObjectDecl> objects;
  std::vector<Region> regions;

  /// All distinct task ids appearing in any region, ascending.
  std::vector<TaskId> TaskIds() const;

  /// Total bytes across objects.
  std::uint64_t TotalBytes() const;

  /// Consistency checks (object ids in range, active_bytes sized, ...);
  /// returns an empty string when valid, else a description of the problem.
  std::string Validate() const;
};

}  // namespace merch::sim
