// Discrete-time heterogeneous-memory execution engine.
//
// The engine advances all tasks of a region in lock-step epochs. Per epoch
// it (1) derives each object's served-from-DRAM fraction from page
// placement (or the hardware-cache model), (2) resolves bandwidth
// contention across tasks, migration traffic, and background traffic with
// a short fixed-point iteration, (3) advances task progress, and (4)
// accumulates access counts (for profilers) and bandwidth telemetry
// (Figure 6). Regions end with a barrier: the region's duration is its
// slowest task — the paper's central observation is that placement must
// optimise *that*, not individual task speed.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "hm/migration.h"
#include "hm/page_table.h"
#include "sim/machine.h"
#include "sim/oracle.h"
#include "sim/policy.h"
#include "sim/telemetry.h"
#include "sim/workload.h"

namespace merch::sim {

struct SimConfig {
  /// Simulation time step.
  double epoch_seconds = 0.02;
  /// Profiling/migration interval (MemoryOptimizer-style daemon period).
  double interval_seconds = 0.5;
  /// Placement granularity (2 MiB regions bound metadata at TiB scale; the
  /// paper migrates 4 KiB pages — ratios, not granularity, drive results).
  std::uint64_t page_bytes = 2 * MiB;
  /// Migration engine transfer-rate cap.
  double migration_gbps = 2.0;
  /// PMU measurement noise (multiplicative sigma).
  double pmc_noise = 0.02;
  std::uint64_t seed = 42;
  /// Homogeneous-run override: serve every access from this tier,
  /// ignoring capacity (used to obtain T_dram_only / T_pm_only bounds).
  std::optional<hm::Tier> force_tier;
};

class Engine {
 public:
  /// `policy` may be null (homogeneous/force-tier runs only).
  Engine(const Workload& workload, const MachineSpec& machine,
         SimConfig config, PlacementPolicy* policy);

  SimResult Run();

  // --- accessors used by SimContext ---
  const Workload& workload() const { return *workload_; }
  const MachineSpec& machine() const { return machine_; }
  const SimConfig& config() const { return config_; }
  hm::PageTable& pages() { return *pages_; }
  hm::MigrationEngine& migration() { return *migration_; }
  AccessOracle& oracle() { return *oracle_; }
  double now() const { return t_; }
  std::size_t region_index() const { return region_index_; }
  const std::vector<RegionStats>& history() const { return history_; }
  double ObjectDramFraction(std::size_t object) const;
  void SetHwDramFraction(std::size_t object, double fraction);
  void AddBackgroundTraffic(double bytes_on_pm, double bytes_on_dram);

 private:
  struct DerivedAccess {
    std::size_t object = 0;
    trace::AccessPattern pattern = trace::AccessPattern::kStream;
    double program = 0;        // program-level accesses
    double mm = 0;             // main-memory accesses
    double bytes = 0;          // mm * line size
    double read_fraction = 1.0;
    double mlp = 1.0;
    double overlap = 0.0;
    double prefetch_miss = 0.0;
    bool sequential = true;
    bool sweeping = true;
    double l2_misses = 0;
  };
  struct DerivedKernel {
    double compute_seconds = 0;
    std::uint64_t instructions = 0;
    double branch_instructions = 0;
    double vector_instructions = 0;
    std::vector<DerivedAccess> accesses;
  };
  struct KernelTiming {
    double seconds = 0;    // contended kernel duration
    double dram_bytes = 0; // bytes on DRAM for the whole kernel
    double pm_bytes = 0;
    double memory_seconds = 0;  // unhidden memory time
  };
  struct TaskRuntime {
    TaskId task = kInvalidTask;
    const TaskProgram* program = nullptr;
    std::vector<DerivedKernel> kernels;
    std::size_t kernel_index = 0;
    double kernel_fraction = 0;  // progress within current kernel
    bool done = false;
    double finish_time = 0;
    TaskStats stats;  // accumulated
  };

  void RegisterObjects();
  void BuildRegionRuntime(const Region& region);
  DerivedKernel DeriveKernel(const Kernel& kernel, const Region& region) const;
  /// Contended duration of `kernel` under contention factors, evaluated at
  /// the given sweep progress (sequential accesses only benefit from DRAM
  /// pages in the upcoming rank window; see trace::PatternTraits::sweeping).
  KernelTiming TimeKernel(const DerivedKernel& kernel, double progress,
                          double lambda_dram, double lambda_pm) const;

  /// Fraction of pages in the rank window [f0, f1) of `object` resident on
  /// DRAM (probed at fixed stride; exact for prefix placements).
  double SweepDramFraction(std::size_t object, double f0, double f1) const;
  /// One epoch: contention fixed point, task advancement, telemetry.
  void StepEpoch();
  /// Run the policy's profiling interval and reset interval counters.
  void FireInterval();
  /// Pull migration-engine activity into the rate-limited traffic queue.
  void CollectMigrationTraffic();
  void FinishRegion(const Region& region, double region_start);

  const Workload* workload_;
  MachineSpec machine_;
  SimConfig config_;
  PlacementPolicy* policy_;
  Rng rng_;

  std::unique_ptr<hm::PageTable> pages_;
  std::unique_ptr<hm::MigrationEngine> migration_;
  std::unique_ptr<AccessOracle> oracle_;
  std::unique_ptr<SimContext> ctx_;

  std::vector<ObjectId> handles_;
  std::vector<double> dram_weight_;   // heat-weighted DRAM fraction / object
  std::vector<double> hw_fraction_;   // hardware-cache mode fractions
  bool hw_cache_mode_ = false;

  double t_ = 0;
  double interval_deadline_ = 0;
  std::size_t region_index_ = 0;
  std::vector<TaskRuntime> running_;
  std::vector<RegionStats> history_;
  std::vector<BandwidthSample> bandwidth_;

  double migration_queue_bytes_ = 0;
  double background_pm_rate_ = 0;    // bytes/s charged to PM
  double background_dram_rate_ = 0;  // bytes/s charged to DRAM
  double pending_background_pm_ = 0;
  double pending_background_dram_ = 0;
};

/// Convenience: run `workload` with every access served from `tier`
/// (capacity ignored). Returns per-region per-task stats — the source of
/// the T_pm_only / T_dram_only bounds in Eq. 2.
SimResult SimulateHomogeneous(const Workload& workload,
                              const MachineSpec& machine, hm::Tier tier,
                              SimConfig config = {});

}  // namespace merch::sim
