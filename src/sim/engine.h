// Discrete-time heterogeneous-memory execution engine.
//
// The engine advances all tasks of a region in lock-step epochs. Per epoch
// it (1) derives each object's served-from-DRAM fraction from page
// placement (or the hardware-cache model), (2) resolves bandwidth
// contention across tasks, migration traffic, and background traffic with
// a short fixed-point iteration, (3) advances task progress, and (4)
// accumulates access counts (for profilers) and bandwidth telemetry
// (Figure 6). Regions end with a barrier: the region's duration is its
// slowest task — the paper's central observation is that placement must
// optimise *that*, not individual task speed.
//
// Hot-path structure: a kernel's timing under contention factors
// (lambda_dram, lambda_pm) is linear in the lambdas per access, so the
// engine splits TimeKernel into a lambda-independent per-access cost table
// (KernelBase: the expensive part — residency probes, bandwidth blends,
// latency math) and an O(#accesses) fused multiply-add application. The
// base is memoized per task and invalidated only when the task's kernel,
// its sweep window, or any page placement changed since it was built; the
// fixed-point iterations and the advance pass then reuse one base instead
// of re-evaluating TimeKernel up to 9x per task per epoch. Base rebuilds
// are independent per task and may be spread over a service::ThreadPool
// (SimConfig::timing_threads); every reduction stays serial in task order,
// so results are bit-identical at any width and with memoization or the
// residency index disabled (tests/engine_equiv_test.cc enforces this).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "hm/migration.h"
#include "hm/page_table.h"
#include "service/thread_pool.h"
#include "sim/machine.h"
#include "sim/oracle.h"
#include "sim/policy.h"
#include "sim/telemetry.h"
#include "sim/workload.h"

namespace merch::sim {

struct SimConfig {
  /// Simulation time step.
  double epoch_seconds = 0.02;
  /// Profiling/migration interval (MemoryOptimizer-style daemon period).
  double interval_seconds = 0.5;
  /// Placement granularity (2 MiB regions bound metadata at TiB scale; the
  /// paper migrates 4 KiB pages — ratios, not granularity, drive results).
  std::uint64_t page_bytes = 2 * MiB;
  /// Migration engine transfer-rate cap.
  double migration_gbps = 2.0;
  /// PMU measurement noise (multiplicative sigma).
  double pmc_noise = 0.02;
  std::uint64_t seed = 42;
  /// Homogeneous-run override: serve every access from this tier,
  /// ignoring capacity (used to obtain T_dram_only / T_pm_only bounds).
  std::optional<hm::Tier> force_tier;
  /// Threads refreshing per-task timing bases each epoch (1 = serial in
  /// the caller). Bit-identical results at any width.
  std::size_t timing_threads = 1;
  /// Escape hatches, overridable by the MERCH_SWEEP_INDEX and
  /// MERCH_ENGINE_MEMO environment variables ("0"/"off"/"false" disables):
  /// serve SweepDramFraction probes from the page table's O(1) residency
  /// bitset, and memoize per-task timing bases across the epoch loop.
  /// Both off reproduces the pre-index engine's cost profile; results are
  /// identical either way (bench/engine_speed measures the gap).
  bool sweep_index = true;
  bool timing_memo = true;
};

/// Monotonic hot-path counters (bench/engine_speed reads these).
struct EngineCounters {
  std::uint64_t epochs = 0;
  /// KernelTiming evaluations requested (fixed-point + advance passes).
  std::uint64_t timing_evals = 0;
  /// Full per-access cost-table builds (the expensive evaluations; with
  /// memoization this is the small fraction of timing_evals not served
  /// from a cached base).
  std::uint64_t base_builds = 0;
};

class Engine {
 public:
  /// `policy` may be null (homogeneous/force-tier runs only).
  Engine(const Workload& workload, const MachineSpec& machine,
         SimConfig config, PlacementPolicy* policy);

  SimResult Run();

  // --- accessors used by SimContext ---
  const Workload& workload() const { return *workload_; }
  const MachineSpec& machine() const { return machine_; }
  const SimConfig& config() const { return config_; }
  hm::PageTable& pages() { return *pages_; }
  hm::MigrationEngine& migration() { return *migration_; }
  AccessOracle& oracle() { return *oracle_; }
  double now() const { return t_; }
  std::size_t region_index() const { return region_index_; }
  const std::vector<RegionStats>& history() const { return history_; }
  double ObjectDramFraction(std::size_t object) const;
  void SetHwDramFraction(std::size_t object, double fraction);
  void AddBackgroundTraffic(double bytes_on_pm, double bytes_on_dram);

  EngineCounters counters() const;

 private:
  struct DerivedAccess {
    std::size_t object = 0;
    trace::AccessPattern pattern = trace::AccessPattern::kStream;
    double program = 0;        // program-level accesses
    double mm = 0;             // main-memory accesses
    double bytes = 0;          // mm * line size
    double read_fraction = 1.0;
    double mlp = 1.0;
    double overlap = 0.0;
    double prefetch_miss = 0.0;
    bool sequential = true;
    bool sweeping = true;
    double l2_misses = 0;
  };
  struct DerivedKernel {
    double compute_seconds = 0;
    std::uint64_t instructions = 0;
    double branch_instructions = 0;
    double vector_instructions = 0;
    bool has_sweep = false;  // any sweeping access (timing depends on progress)
    std::vector<DerivedAccess> accesses;
  };
  struct KernelTiming {
    double seconds = 0;    // contended kernel duration
    double dram_bytes = 0; // bytes on DRAM for the whole kernel
    double pm_bytes = 0;
    double memory_seconds = 0;  // unhidden memory time
  };
  /// Lambda-independent per-access tier costs: TimeKernel's inner loop
  /// with the contention factor divided out.
  struct AccessCost {
    double t_dram = 0;     // max(bandwidth, latency) seconds at lambda == 1
    double t_pm = 0;
    double dram_bytes = 0;
    double pm_bytes = 0;
  };
  /// Memoized expensive half of TimeKernel, tagged with the inputs it was
  /// built from so staleness is detectable.
  struct KernelBase {
    std::vector<AccessCost> costs;
    double compute_seconds = 0;
    double overlap = 0;  // mm-weighted average overlap factor
    bool valid = false;
    std::size_t kernel_index = 0;
    double progress = 0;
    std::uint64_t placement_version = 0;
  };
  struct TaskRuntime {
    TaskId task = kInvalidTask;
    const TaskProgram* program = nullptr;
    std::vector<DerivedKernel> kernels;
    std::size_t kernel_index = 0;
    double kernel_fraction = 0;  // progress within current kernel
    bool done = false;
    double finish_time = 0;
    TaskStats stats;  // accumulated
    KernelBase base;  // memoized timing base for the current kernel
  };

  void RegisterObjects();
  void BuildRegionRuntime(const Region& region);
  DerivedKernel DeriveKernel(const Kernel& kernel, const Region& region) const;
  /// Contended duration of `kernel` under contention factors, evaluated at
  /// the given sweep progress (sequential accesses only benefit from DRAM
  /// pages in the upcoming rank window; see trace::PatternTraits::sweeping).
  /// Equivalent to ComputeKernelBase + TimingFromBase; the unmemoized path.
  KernelTiming TimeKernel(const DerivedKernel& kernel, double progress,
                          double lambda_dram, double lambda_pm) const;

  /// The expensive, lambda-independent half of TimeKernel: residency
  /// lookups, bandwidth blends, latency math. Thread-safe for concurrent
  /// distinct `out` (reads only placement state that is quiescent during
  /// an epoch).
  void ComputeKernelBase(const DerivedKernel& kernel, double progress,
                         KernelBase* out) const;
  /// The cheap half: apply contention factors to a prepared base.
  /// Bit-identical to evaluating TimeKernel with the base's inputs.
  KernelTiming TimingFromBase(const KernelBase& base, double lambda_dram,
                              double lambda_pm) const;
  bool BaseValid(const TaskRuntime& rt) const;
  void BuildBase(TaskRuntime& rt);
  /// Rebuild every live task's stale base, across timing_threads workers
  /// when a pool exists.
  void RefreshKernelBases();

  /// Fraction of pages in the rank window [f0, f1) of `object` resident on
  /// DRAM (probed at fixed stride; exact for prefix placements). Each
  /// probe is an O(1) residency-bitset lookup (page-tier probe with the
  /// index disabled).
  double SweepDramFraction(std::size_t object, double f0, double f1) const;
  /// One epoch: contention fixed point, task advancement, telemetry.
  void StepEpoch();
  /// Run the policy's profiling interval and reset interval counters.
  void FireInterval();
  /// Pull migration-engine activity into the rate-limited traffic queue.
  void CollectMigrationTraffic();
  void FinishRegion(const Region& region, double region_start);

  const Workload* workload_;
  MachineSpec machine_;
  SimConfig config_;
  PlacementPolicy* policy_;
  Rng rng_;

  std::unique_ptr<hm::PageTable> pages_;
  std::unique_ptr<hm::MigrationEngine> migration_;
  std::unique_ptr<AccessOracle> oracle_;
  std::unique_ptr<SimContext> ctx_;
  std::unique_ptr<service::ThreadPool> pool_;  // timing_threads > 1 only

  std::vector<ObjectId> handles_;
  std::vector<double> dram_weight_;   // heat-weighted DRAM fraction / object
  std::vector<double> hw_fraction_;   // hardware-cache mode fractions
  bool hw_cache_mode_ = false;
  bool sweep_index_ = true;           // resolved sweep_index escape hatch
  bool timing_memo_ = true;           // resolved timing_memo escape hatch

  /// Bumped on every page move and hardware-fraction update; memoized
  /// bases referencing an older version are stale.
  std::uint64_t placement_version_ = 1;

  double t_ = 0;
  double interval_deadline_ = 0;
  std::size_t region_index_ = 0;
  std::vector<TaskRuntime> running_;
  std::size_t live_tasks_ = 0;        // not-done entries of running_
  std::vector<KernelTiming> timing_;  // per-task scratch, hoisted off StepEpoch
  std::vector<std::size_t> rebuild_;  // stale-base indices, reused per epoch
  std::vector<RegionStats> history_;
  std::vector<BandwidthSample> bandwidth_;

  mutable KernelBase scratch_base_;   // unmemoized TimeKernel scratch
  mutable std::uint64_t epochs_ = 0;
  mutable std::uint64_t timing_evals_ = 0;
  mutable std::atomic<std::uint64_t> base_builds_{0};  // workers increment

  double migration_queue_bytes_ = 0;
  double background_pm_rate_ = 0;    // bytes/s charged to PM
  double background_dram_rate_ = 0;  // bytes/s charged to DRAM
  double pending_background_pm_ = 0;
  double pending_background_dram_ = 0;
};

/// Convenience: run `workload` with every access served from `tier`
/// (capacity ignored). Returns per-region per-task stats — the source of
/// the T_pm_only / T_dram_only bounds in Eq. 2.
SimResult SimulateHomogeneous(const Workload& workload,
                              const MachineSpec& machine, hm::Tier tier,
                              SimConfig config = {});

}  // namespace merch::sim
