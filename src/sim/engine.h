// Discrete-time heterogeneous-memory execution engine.
//
// The engine advances all tasks of a region in lock-step epochs. Per epoch
// it (1) derives each object's served-from-DRAM fraction from page
// placement (or the hardware-cache model), (2) resolves bandwidth
// contention across tasks, migration traffic, and background traffic with
// a short fixed-point iteration, (3) advances task progress, and (4)
// accumulates access counts (for profilers) and bandwidth telemetry
// (Figure 6). Regions end with a barrier: the region's duration is its
// slowest task — the paper's central observation is that placement must
// optimise *that*, not individual task speed.
//
// Hot-path structure: a kernel's timing under contention factors
// (lambda_dram, lambda_pm) is linear in the lambdas per access, so the
// engine splits TimeKernel into a lambda-independent per-access cost table
// (KernelBase: the expensive part — residency probes, bandwidth blends,
// latency math) and an O(#accesses) fused multiply-add application. The
// base is memoized per task and invalidated only when the task's kernel,
// its sweep window, or any page placement changed since it was built; the
// fixed-point iterations and the advance pass then reuse one base instead
// of re-evaluating TimeKernel up to 9x per task per epoch. Base rebuilds
// are independent per task and may be spread over a service::ThreadPool
// (SimConfig::timing_threads); every reduction stays serial in task order,
// so results are bit-identical at any width and with memoization or the
// residency index disabled (tests/engine_equiv_test.cc enforces this).
//
// On top of the memo sits the lane-structured fast path (MERCH_SIMD, see
// DESIGN.md §5): DeriveKernel hoists every placement-independent per-access
// term (mixed bandwidths, blended latencies, the mm-weighted overlap) into
// stride-1 SoA arrays once per region, base rebuilds run a branchless
// vectorizable loop over those lanes (sweep-only partial rebuilds when only
// the progress window moved), TimingFromBase serves the uncontended
// lambda == 1 case from order-exact per-tier sums, and the contention
// fixed point both skips iterations whose lambdas are bitwise unchanged
// and fans TimingFromBase over the pool. Every shortcut recomputes the
// exact FP operation sequence of the scalar path (or skips work whose
// recomputation would be a bitwise no-op), so results stay identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "hm/migration.h"
#include "hm/page_table.h"
#include "service/thread_pool.h"
#include "sim/arena.h"
#include "sim/checkpoint.h"
#include "sim/machine.h"
#include "sim/oracle.h"
#include "sim/policy.h"
#include "sim/telemetry.h"
#include "sim/workload.h"

namespace merch::sim {

struct SimConfig {
  /// Simulation time step.
  double epoch_seconds = 0.02;
  /// Profiling/migration interval (MemoryOptimizer-style daemon period).
  double interval_seconds = 0.5;
  /// Placement granularity (2 MiB regions bound metadata at TiB scale; the
  /// paper migrates 4 KiB pages — ratios, not granularity, drive results).
  std::uint64_t page_bytes = 2 * MiB;
  /// Migration engine transfer-rate cap.
  double migration_gbps = 2.0;
  /// PMU measurement noise (multiplicative sigma).
  double pmc_noise = 0.02;
  std::uint64_t seed = 42;
  /// Homogeneous-run override: serve every access from this tier,
  /// ignoring capacity (used to obtain T_dram_only / T_pm_only bounds).
  std::optional<hm::Tier> force_tier;
  /// Threads refreshing per-task timing bases each epoch (1 = serial in
  /// the caller). Bit-identical results at any width.
  std::size_t timing_threads = 1;
  /// Minimum total active cost-table lanes across live tasks before an
  /// epoch's fixed-point arbitration fans out to the timing pool. Below
  /// this, one iteration's serial work is smaller than a pool
  /// dispatch+join round trip and fanning out only adds latency; the
  /// serial and parallel evaluations are bit-identical, so the gate is a
  /// pure scheduling heuristic. When active (> 0) it also refuses to fan
  /// out on a single-hardware-thread host. Tests set 0 to force the
  /// parallel path unconditionally.
  std::size_t timing_fanout_min_lanes = 8192;
  /// Escape hatches, overridable by the MERCH_SWEEP_INDEX and
  /// MERCH_ENGINE_MEMO environment variables ("0"/"off"/"false" disables):
  /// serve SweepDramFraction probes from the page table's O(1) residency
  /// bitset, and memoize per-task timing bases across the epoch loop.
  /// Both off reproduces the pre-index engine's cost profile; results are
  /// identical either way (bench/engine_speed measures the gap).
  bool sweep_index = true;
  bool timing_memo = true;
  /// MERCH_SIMD: the lane-structured (SoA) cost kernels, partial sweep
  /// rebuilds, order-exact sum shortcuts, and fixed-point iteration
  /// skipping. Builds on the memoized-base layout, so it is only effective
  /// when sweep_index and timing_memo are also on. MERCH_ARENA: back the
  /// lane scratch with the region-scoped bump arena instead of individual
  /// heap blocks. Results are bit-identical in every combination.
  bool simd = true;
  bool arena = true;
};

/// Monotonic hot-path counters (bench/engine_speed reads these).
struct EngineCounters {
  std::uint64_t epochs = 0;
  /// KernelTiming evaluations requested (fixed-point + advance passes).
  std::uint64_t timing_evals = 0;
  /// Full per-access cost-table builds (the expensive evaluations; with
  /// memoization this is the small fraction of timing_evals not served
  /// from a cached base).
  std::uint64_t base_builds = 0;
  /// Sweep-only partial base refreshes (MERCH_SIMD): rebuilds that touched
  /// only the sweeping lanes because placement was unchanged and only the
  /// progress window moved.
  std::uint64_t partial_refreshes = 0;
};

/// The five moments a policy is consulted during a run. kInterval fires on
/// the periodic profiling deadline inside a region; kFlush is the region-end
/// synchronisation interval (same OnInterval callback, distinct position in
/// the engine's control flow — a resumed run must know which one it was).
enum class HookPoint : std::uint8_t {
  kSimStart = 0,
  kRegionStart = 1,
  kInterval = 2,
  kFlush = 3,
  kRegionEnd = 4,
};

class Engine {
 public:
  /// `policy` may be null (homogeneous/force-tier runs only).
  Engine(const Workload& workload, const MachineSpec& machine,
         SimConfig config, PlacementPolicy* policy);

  SimResult Run();

  /// Restore `ck` into this (freshly constructed) engine and run to
  /// completion. The returned SimResult covers the *whole* simulation —
  /// regions completed before the checkpoint come from its history — and
  /// is byte-identical to an uninterrupted Run() of the same trajectory.
  /// The policy must be the object that lived through the checkpointed
  /// prefix (its internal state is not part of the checkpoint).
  SimResult ResumeRun(const EngineCheckpoint& ck);

  // --- incremental sweep support (sim/incremental.h drives these) ---

  /// Interposes on every policy hook. While an observer is set, the engine
  /// calls OnHook *instead of* the policy callback; the observer decides
  /// what runs (typically the parent hook via RunHookDirect plus sandboxed
  /// probes of other sweep points' policies).
  class HookObserver {
   public:
    virtual ~HookObserver() = default;
    virtual void OnHook(Engine& engine, HookPoint hook) = 0;
  };
  void set_hook_observer(HookObserver* observer) { hook_observer_ = observer; }

  /// One successful page move, as seen by the move listener.
  struct MoveRecord {
    PageId page = 0;
    hm::Tier from = hm::Tier::kPm;
    hm::Tier to = hm::Tier::kPm;
  };
  /// A hook's recorded mutation stream: the divergence fingerprint (an
  /// FNV-1a hash over every successful move, hardware-fraction update,
  /// background-traffic charge, and the migration-stat delta including
  /// capacity-rejected moves) plus the move log needed to roll the page
  /// table back. Two hooks with equal fingerprints left the engine in
  /// identical states when started from identical states: the fingerprint
  /// covers the policy's entire mutation surface.
  struct ActionRecord {
    std::uint64_t fingerprint = 0;
    std::vector<MoveRecord> moves;
  };
  void BeginActionRecord();
  ActionRecord TakeActionRecord();

  /// The cheap-to-copy state a policy hook can perturb besides page tiers.
  /// Scalars and vectors restore by full copy — never by inverse
  /// arithmetic, which would not be bitwise exact.
  struct LightState {
    std::vector<double> dram_weight;
    std::vector<double> hw_fraction;
    std::uint64_t placement_version = 0;
    double pending_background_pm = 0;
    double pending_background_dram = 0;
    hm::MigrationStats migration_epoch;
    hm::MigrationStats migration_lifetime;
  };
  LightState CaptureLight() const;
  void RestoreLight(const LightState& s);

  /// Replay a recorded move log backwards (exact inverse moves; each is
  /// guaranteed feasible because the forward move vacated the slot) or
  /// forwards. Neither records nor fingerprints; the move listener still
  /// updates heat weights, so callers follow up with RestoreLight.
  void UndoMoves(std::span<const MoveRecord> moves);
  void RedoMoves(std::span<const MoveRecord> moves);

  /// Run one hook against the engine's current state: the engine's own
  /// policy, or a neighbouring sweep point's policy probing shared state.
  void RunHookDirect(HookPoint hook);
  void RunHookForPolicy(PlacementPolicy& policy, HookPoint hook);

  /// Swap the DRAM budget the machine spec and page table enforce, so a
  /// sandboxed probe sees the capacity of *its* sweep point. The caller
  /// restores the previous value afterwards; shrinking is safe whenever
  /// the prober's own moves all succeeded under the smaller budget.
  void OverrideDramCapacity(std::uint64_t bytes);

  /// Snapshot the complete engine state. `just_ran` is the hook that just
  /// returned; it determines where a restored engine resumes.
  EngineCheckpoint SaveCheckpoint(HookPoint just_ran) const;
  void RestoreCheckpoint(const EngineCheckpoint& ck);

  /// Abandon the run at the next hook boundary (checkpoint-fuzz tests
  /// capture a prefix and stop; the partial result is discarded).
  void RequestStop() { stop_requested_ = true; }

  std::uint64_t epoch_count() const { return epochs_; }
  PlacementPolicy* policy() const { return policy_; }

  // --- accessors used by SimContext ---
  const Workload& workload() const { return *workload_; }
  const MachineSpec& machine() const { return machine_; }
  const SimConfig& config() const { return config_; }
  hm::PageTable& pages() { return *pages_; }
  hm::MigrationEngine& migration() { return *migration_; }
  AccessOracle& oracle() { return *oracle_; }
  double now() const { return t_; }
  std::size_t region_index() const { return region_index_; }
  const std::vector<RegionStats>& history() const { return history_; }
  double ObjectDramFraction(std::size_t object) const;
  void SetHwDramFraction(std::size_t object, double fraction);
  void AddBackgroundTraffic(double bytes_on_pm, double bytes_on_dram);

  EngineCounters counters() const;

 private:
  struct DerivedAccess {
    std::size_t object = 0;
    trace::AccessPattern pattern = trace::AccessPattern::kStream;
    double program = 0;        // program-level accesses
    double mm = 0;             // main-memory accesses
    double bytes = 0;          // mm * line size
    double read_fraction = 1.0;
    double mlp = 1.0;
    double overlap = 0.0;
    double prefetch_miss = 0.0;
    bool sequential = true;
    bool sweeping = true;
    double l2_misses = 0;
  };
  /// Stride-1 per-access lanes for the SIMD base builder (MERCH_SIMD).
  /// Everything placement-independent is hoisted here once per region by
  /// DeriveKernel — with the exact FP operation sequence the scalar
  /// builder uses per rebuild — so ComputeKernelBaseLanes is a branchless
  /// loop over contiguous doubles. Arena-backed; valid until the next
  /// region's BuildRegionRuntime.
  struct LaneBlock {
    std::size_t n = 0;
    std::span<double> mm;        // main-memory accesses
    std::span<double> bytes;     // mm * line size
    std::span<double> mlp;
    std::span<double> bw_dram;   // MixedBandwidthBytesPerSec per tier
    std::span<double> bw_pm;
    std::span<double> lat_dram;  // read/write-blended latency (ns)
    std::span<double> lat_pm;
    std::span<double> f;         // scratch: per-access DRAM fraction
    std::span<std::uint32_t> object;
    std::span<std::uint32_t> sweep_ix;  // indices of sweeping accesses
    double overlap = 0;  // mm-weighted overlap (scalar builder's order)
  };
  struct DerivedKernel {
    double compute_seconds = 0;
    std::uint64_t instructions = 0;
    double branch_instructions = 0;
    double vector_instructions = 0;
    bool has_sweep = false;  // any sweeping access (timing depends on progress)
    std::vector<DerivedAccess> accesses;
    LaneBlock lanes;  // populated only when the SIMD path is active
  };
  struct KernelTiming {
    double seconds = 0;    // contended kernel duration
    double dram_bytes = 0; // bytes on DRAM for the whole kernel
    double pm_bytes = 0;
    double memory_seconds = 0;  // unhidden memory time
  };
  /// Lambda-independent per-access tier costs: TimeKernel's inner loop
  /// with the contention factor divided out.
  struct AccessCost {
    double t_dram = 0;     // max(bandwidth, latency) seconds at lambda == 1
    double t_pm = 0;
    double dram_bytes = 0;
    double pm_bytes = 0;
  };
  /// Memoized expensive half of TimeKernel, tagged with the inputs it was
  /// built from so staleness is detectable. The scalar path fills `costs`;
  /// the SIMD path fills the SoA spans (capacity = the task's widest
  /// kernel, arena-backed) plus order-exact per-tier sums that serve the
  /// uncontended lambda == 1 evaluations directly.
  struct KernelBase {
    std::vector<AccessCost> costs;
    std::span<double> t_dram;  // SIMD lanes (n = active access count)
    std::span<double> t_pm;
    std::span<double> b_dram;
    std::span<double> b_pm;
    std::size_t n = 0;
    double sum_t_dram = 0;  // serial in-order sums over the lanes
    double sum_t_pm = 0;
    double sum_b_dram = 0;
    double sum_b_pm = 0;
    double compute_seconds = 0;
    double overlap = 0;  // mm-weighted average overlap factor
    bool valid = false;
    std::size_t kernel_index = 0;
    double progress = 0;
    std::uint64_t placement_version = 0;
  };
  struct TaskRuntime {
    TaskId task = kInvalidTask;
    const TaskProgram* program = nullptr;
    std::vector<DerivedKernel> kernels;
    std::size_t kernel_index = 0;
    double kernel_fraction = 0;  // progress within current kernel
    bool done = false;
    double finish_time = 0;
    TaskStats stats;  // accumulated
    KernelBase base;  // memoized timing base for the current kernel
  };

  void RegisterObjects();
  void BuildRegionRuntime(const Region& region);
  /// Non-const: the SIMD path carves the kernel's LaneBlock out of arena_.
  DerivedKernel DeriveKernel(const Kernel& kernel, const Region& region);
  /// Contended duration of `kernel` under contention factors, evaluated at
  /// the given sweep progress (sequential accesses only benefit from DRAM
  /// pages in the upcoming rank window; see trace::PatternTraits::sweeping).
  /// Equivalent to ComputeKernelBase + TimingFromBase; the unmemoized path.
  KernelTiming TimeKernel(const DerivedKernel& kernel, double progress,
                          double lambda_dram, double lambda_pm) const;

  /// The expensive, lambda-independent half of TimeKernel: residency
  /// lookups, bandwidth blends, latency math. Thread-safe for concurrent
  /// distinct `out` (reads only placement state that is quiescent during
  /// an epoch).
  void ComputeKernelBase(const DerivedKernel& kernel, double progress,
                         KernelBase* out) const;
  /// SIMD variant of ComputeKernelBase over the kernel's LaneBlock:
  /// branchless stride-1 cost loop plus the order-exact per-tier sums.
  /// Bitwise equal to the scalar builder (DESIGN.md §5).
  void ComputeKernelBaseLanes(const DerivedKernel& kernel, double progress,
                              KernelBase* out) const;
  /// Recompute only the sweeping lanes of a base whose placement stamp is
  /// current (only the progress window moved). Non-sweeping lanes cannot
  /// have changed, so this equals a full rebuild bit for bit.
  void PartialRefreshBaseLanes(const DerivedKernel& kernel, double progress,
                               KernelBase* out) const;
  /// The cheap half: apply contention factors to a prepared base.
  /// Bit-identical to evaluating TimeKernel with the base's inputs.
  KernelTiming TimingFromBase(const KernelBase& base, double lambda_dram,
                              double lambda_pm) const;
  /// TimingFromBase without the counter bump: the pure function the
  /// parallel arbitration workers call (they may not touch mutable
  /// engine state; the caller accounts evaluations serially).
  KernelTiming TimingFromBaseImpl(const KernelBase& base, double lambda_dram,
                                  double lambda_pm) const;
  bool BaseValid(const TaskRuntime& rt) const;
  void BuildBase(TaskRuntime& rt);
  /// Scheduling heuristic shared by the base refresh and the fixed-point
  /// fan-out: parallel dispatch is pointless on a single-hardware-thread
  /// host, where workers can only timeshare the core the serial path
  /// already owns. timing_fanout_min_lanes = 0 (the equivalence tests)
  /// forces fan-out regardless. Both paths are bit-identical either way.
  bool ParallelFanOutAllowed() const;
  /// Rebuild every live task's stale base, across timing_threads workers
  /// when a pool exists.
  void RefreshKernelBases();
  /// Evaluate timing_[i] for every live task at the given lambdas over the
  /// pool (static chunks, deterministic per-slot writes). Falls back to
  /// the caller's serial loop below the fan-out threshold.
  void ParallelTimings(double lambda_dram, double lambda_pm);

  /// Fraction of pages in the rank window [f0, f1) of `object` resident on
  /// DRAM (probed at fixed stride; exact for prefix placements). Each
  /// probe is an O(1) residency-bitset lookup (page-tier probe with the
  /// index disabled).
  double SweepDramFraction(std::size_t object, double f0, double f1) const;
  /// SIMD-path SweepDramFraction: the same 16 probe ranks (vectorizable
  /// batch computation), but consecutive equal ranks — the common case for
  /// small objects, since ranks are monotonically non-decreasing — reuse
  /// one bitset lookup. Identical hit count by construction; requires the
  /// residency index (guaranteed by the simd_ resolution rule).
  double SweepDramFractionLanes(std::size_t object, double f0,
                                double f1) const;
  /// One epoch: contention fixed point, task advancement, telemetry.
  /// Interval hooks fire from the caller (RunInternal), so a resumed run
  /// can re-enter between an interval and the next epoch.
  void StepEpoch();
  /// The region loop, resumable at any EnginePhase. Run() enters it fresh;
  /// ResumeRun() enters it mid-flight after RestoreCheckpoint.
  SimResult RunInternal(EnginePhase phase);
  /// Route a hook through the observer (incremental sweeps) or straight to
  /// the policy.
  void DispatchHook(HookPoint hook);
  /// Post-OnInterval engine work: reset the oracle's interval counters and
  /// roll pending background traffic into the active rates.
  void PostInterval();
  /// Fold one recorded action into the divergence fingerprint.
  void FoldAction(std::uint64_t tag, std::uint64_t a, std::uint64_t b);
  /// Pull migration-engine activity into the rate-limited traffic queue.
  void CollectMigrationTraffic();
  void FinishRegion(const Region& region, double region_start);

  const Workload* workload_;
  MachineSpec machine_;
  SimConfig config_;
  PlacementPolicy* policy_;
  Rng rng_;

  std::unique_ptr<hm::PageTable> pages_;
  std::unique_ptr<hm::MigrationEngine> migration_;
  std::unique_ptr<AccessOracle> oracle_;
  std::unique_ptr<SimContext> ctx_;
  std::unique_ptr<service::ThreadPool> pool_;  // timing_threads > 1 only

  std::vector<ObjectId> handles_;
  std::vector<double> dram_weight_;   // heat-weighted DRAM fraction / object
  std::vector<double> hw_fraction_;   // hardware-cache mode fractions
  bool hw_cache_mode_ = false;
  bool sweep_index_ = true;           // resolved sweep_index escape hatch
  bool timing_memo_ = true;           // resolved timing_memo escape hatch
  /// Resolved MERCH_SIMD, and-ed with the hatches it builds on: the lane
  /// path needs the memoized-base layout and the residency index.
  bool simd_ = true;
  EpochArena arena_{true};            // mode resolved from MERCH_ARENA

  /// Bumped on every page move and hardware-fraction update; memoized
  /// bases referencing an older version are stale.
  std::uint64_t placement_version_ = 1;

  double t_ = 0;
  double interval_deadline_ = 0;
  std::size_t region_index_ = 0;
  double region_start_ = 0;           // t_ when the current region began
  std::vector<TaskRuntime> running_;
  std::size_t live_tasks_ = 0;        // not-done entries of running_
  /// Upper bound on active cost-table lanes for the current region (sum of
  /// each task's widest kernel). When it cannot reach
  /// timing_fanout_min_lanes, the per-epoch active-lane count is skipped
  /// outright — the gate's decision is already known.
  std::size_t region_lane_bound_ = 0;

  // --- incremental sweep machinery ---
  HookObserver* hook_observer_ = nullptr;
  bool stop_requested_ = false;
  bool recording_ = false;            // action recorder armed
  std::uint64_t record_fp_ = 0;
  std::vector<MoveRecord> record_moves_;
  hm::MigrationStats record_mig_base_;  // epoch stats at BeginActionRecord
  std::vector<KernelTiming> timing_;  // per-task scratch, hoisted off StepEpoch
  std::vector<std::size_t> rebuild_;  // stale-base indices, reused per epoch
  std::vector<RegionStats> history_;
  std::vector<BandwidthSample> bandwidth_;

  mutable KernelBase scratch_base_;   // unmemoized TimeKernel scratch
  mutable std::uint64_t epochs_ = 0;
  mutable std::uint64_t timing_evals_ = 0;
  mutable std::atomic<std::uint64_t> base_builds_{0};  // workers increment
  mutable std::atomic<std::uint64_t> partial_refreshes_{0};
  /// Set by the fixed point when the final lambdas are bitwise the ones
  /// timing_ was last evaluated at (exact convergence), letting the
  /// advance pass reuse timing_[i] for each task's first slice.
  bool timing_at_final_lambda_ = false;

  double migration_queue_bytes_ = 0;
  double background_pm_rate_ = 0;    // bytes/s charged to PM
  double background_dram_rate_ = 0;  // bytes/s charged to DRAM
  double pending_background_pm_ = 0;
  double pending_background_dram_ = 0;
};

/// Convenience: run `workload` with every access served from `tier`
/// (capacity ignored). Returns per-region per-task stats — the source of
/// the T_pm_only / T_dram_only bounds in Eq. 2.
SimResult SimulateHomogeneous(const Workload& workload,
                              const MachineSpec& machine, hm::Tier tier,
                              SimConfig config = {});

}  // namespace merch::sim
