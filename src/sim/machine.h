// Full machine description: heterogeneous memory + CPU.
#pragma once

#include "cachesim/cpu_cache.h"
#include "hm/tier.h"

namespace merch::sim {

struct MachineSpec {
  hm::HmSpec hm;
  cachesim::CpuCacheSpec cache;
  double core_ghz = 2.1;  // Xeon Gold 6252N base clock
  double base_ipc = 2.0;  // sustained non-stalled instructions/cycle
  int cores = 24;

  /// The paper's evaluation platform (Section 7): 2x Xeon Gold 6252N,
  /// 192 GB DRAM + 1.5 TB Optane PM. We model one socket's worth of cores;
  /// task counts in the workloads match the paper's per-app configurations.
  static MachineSpec Paper() {
    return MachineSpec{.hm = hm::HmSpec::PaperOptane(),
                       .cache = cachesim::CpuCacheSpec::PaperXeon()};
  }

  /// Downscaled machine for fast unit tests.
  static MachineSpec Tiny() {
    return MachineSpec{.hm = hm::HmSpec::Tiny(),
                       .cache = cachesim::CpuCacheSpec{.l2_bytes = 256 * KiB,
                                                       .llc_bytes = 2 * MiB}};
  }
};

}  // namespace merch::sim
