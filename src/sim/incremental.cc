#include "sim/incremental.h"

#include <cassert>
#include <utility>

#include "hm/tier.h"

namespace merch::sim {
namespace {

/// A sweep point currently riding a shared engine.
struct Passenger {
  std::size_t index = 0;  // into the sweep's spec array
  std::uint64_t forks = 0;
};

/// Passengers that diverged with the same post-hook fingerprint share one
/// checkpoint and recursively form a sub-ladder.
struct ForkGroup {
  std::uint64_t fingerprint = 0;
  EngineCheckpoint checkpoint;
  std::vector<Passenger> members;
};

std::uint64_t DramCapacity(const MachineSpec& machine) {
  return machine.hm[hm::Tier::kDram].capacity_bytes;
}

/// Interposes on every hook of the shared engine: runs the parent's hook
/// under the action recorder, then sandboxes each passenger's policy
/// against the pre-hook state and compares mutation fingerprints.
///
/// Rollback discipline (all bitwise-exact):
///   page tiers   exact inverse moves, replayed in reverse order — each
///                returns a page to the slot its forward move vacated, so
///                capacity can never reject the undo;
///   everything   restored by full copy from a LightState capture (never
///   else         by inverse arithmetic, which is not exact in FP).
class ForkObserver : public Engine::HookObserver {
 public:
  ForkObserver(std::span<const SweepPointSpec> specs,
               std::uint64_t parent_dram_capacity,
               std::vector<Passenger> passengers)
      : specs_(specs),
        parent_dram_capacity_(parent_dram_capacity),
        passengers_(std::move(passengers)) {}

  const std::vector<Passenger>& passengers() const { return passengers_; }
  std::vector<ForkGroup> TakeForks() { return std::move(forks_); }

  void OnHook(Engine& engine, HookPoint hook) override {
    if (passengers_.empty()) {
      engine.RunHookDirect(hook);
      return;
    }

    const Engine::LightState pre = engine.CaptureLight();
    engine.BeginActionRecord();
    engine.RunHookDirect(hook);
    const Engine::ActionRecord parent = engine.TakeActionRecord();
    const Engine::LightState post = engine.CaptureLight();

    // Rewind to the pre-hook state; every passenger probes from here.
    engine.UndoMoves(parent.moves);
    engine.RestoreLight(pre);

    std::vector<Passenger> riding;
    riding.reserve(passengers_.size());
    for (Passenger& passenger : passengers_) {
      const SweepPointSpec& spec = specs_[passenger.index];
      engine.OverrideDramCapacity(DramCapacity(spec.machine));
      engine.BeginActionRecord();
      engine.RunHookForPolicy(*spec.policy, hook);
      const Engine::ActionRecord probe = engine.TakeActionRecord();
      if (probe.fingerprint == parent.fingerprint) {
        riding.push_back(passenger);
      } else {
        // Diverged: checkpoint the post-probe state (the passenger's own
        // actions applied) once per distinct fingerprint; equal
        // fingerprints reached identical states, so the group shares it.
        ForkGroup* group = nullptr;
        for (ForkGroup& g : forks_) {
          if (g.fingerprint == probe.fingerprint) {
            group = &g;
            break;
          }
        }
        if (group == nullptr) {
          forks_.push_back(ForkGroup{probe.fingerprint,
                                     engine.SaveCheckpoint(hook),
                                     {}});
          group = &forks_.back();
        }
        passenger.forks += 1;
        group->members.push_back(passenger);
      }
      engine.UndoMoves(probe.moves);
      engine.RestoreLight(pre);
    }

    // Re-apply the parent's actions and its DRAM budget; the engine
    // continues exactly as if the hook had run uninterposed.
    engine.OverrideDramCapacity(parent_dram_capacity_);
    engine.RedoMoves(parent.moves);
    engine.RestoreLight(post);
    passengers_ = std::move(riding);
  }

 private:
  std::span<const SweepPointSpec> specs_;
  std::uint64_t parent_dram_capacity_ = 0;
  std::vector<Passenger> passengers_;
  std::vector<ForkGroup> forks_;
};

std::vector<double> FinalFractions(const Engine& engine,
                                   const Workload& workload) {
  std::vector<double> f;
  f.reserve(workload.objects.size());
  for (std::size_t i = 0; i < workload.objects.size(); ++i) {
    f.push_back(engine.ObjectDramFraction(i));
  }
  return f;
}

/// Run one ladder: points[0] drives an engine (fresh, or resumed from the
/// fork checkpoint); the rest ride as passengers until they diverge.
/// Diverged groups recurse as sub-ladders.
void RunLadder(const Workload& workload, const SimConfig& config,
               std::span<const SweepPointSpec> specs,
               std::vector<Passenger> points, const EngineCheckpoint* resume,
               std::vector<SweepPointOutcome>& outcomes) {
  const Passenger root = points.front();
  const SweepPointSpec& root_spec = specs[root.index];
  const std::uint64_t inherited = resume != nullptr ? resume->epochs : 0;

  Engine engine(workload, root_spec.machine, config, root_spec.policy);
  ForkObserver observer(
      specs, DramCapacity(root_spec.machine),
      std::vector<Passenger>(points.begin() + 1, points.end()));
  engine.set_hook_observer(&observer);
  SimResult result =
      resume != nullptr ? engine.ResumeRun(*resume) : engine.Run();

  const std::uint64_t total_epochs = engine.epoch_count();
  const std::vector<double> fractions = FinalFractions(engine, workload);

  // Passengers that never diverged share the root's entire trajectory:
  // identical state evolution means an identical SimResult up to the
  // policy name.
  for (const Passenger& passenger : observer.passengers()) {
    SweepPointOutcome& out = outcomes[passenger.index];
    out.result = result;
    out.result.policy = specs[passenger.index].policy->name();
    out.final_dram_fraction = fractions;
    out.checkpoint_forks = passenger.forks;
    out.epochs_skipped = total_epochs;
    out.epochs_executed = 0;
  }

  SweepPointOutcome& out = outcomes[root.index];
  out.result = std::move(result);
  out.final_dram_fraction = fractions;
  out.checkpoint_forks = root.forks;
  out.epochs_skipped = inherited;
  out.epochs_executed = total_epochs - inherited;

  for (ForkGroup& group : observer.TakeForks()) {
    RunLadder(workload, config, specs, std::move(group.members),
              &group.checkpoint, outcomes);
  }
}

}  // namespace

std::vector<SweepPointOutcome> RunIncrementalSweep(
    const Workload& workload, const SimConfig& config,
    std::span<const SweepPointSpec> specs) {
  std::vector<SweepPointOutcome> outcomes(specs.size());

  // Ladders are keyed by uses_hardware_cache: it decides which state array
  // ObjectDramFraction reads, so mixing modes on one engine is structural
  // divergence no fingerprint can capture.
  std::vector<Passenger> ladders[2];
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SweepPointSpec& spec = specs[i];
    if (spec.policy == nullptr) {
      Engine engine(workload, spec.machine, config, nullptr);
      outcomes[i].result = engine.Run();
      outcomes[i].final_dram_fraction = FinalFractions(engine, workload);
      outcomes[i].epochs_executed = engine.epoch_count();
      continue;
    }
    ladders[spec.policy->uses_hardware_cache() ? 1 : 0].push_back(
        Passenger{i, 0});
  }
  for (std::vector<Passenger>& ladder : ladders) {
    if (ladder.empty()) continue;
    RunLadder(workload, config, specs, std::move(ladder), nullptr, outcomes);
  }
  return outcomes;
}

}  // namespace merch::sim
