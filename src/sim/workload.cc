#include "sim/workload.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace merch::sim {

std::vector<TaskId> Workload::TaskIds() const {
  std::set<TaskId> ids;
  for (const Region& r : regions) {
    for (const TaskProgram& t : r.tasks) ids.insert(t.task);
  }
  return {ids.begin(), ids.end()};
}

std::uint64_t Workload::TotalBytes() const {
  std::uint64_t sum = 0;
  for (const ObjectDecl& o : objects) sum += o.bytes;
  return sum;
}

std::string Workload::Validate() const {
  std::ostringstream err;
  for (std::size_t ri = 0; ri < regions.size(); ++ri) {
    const Region& r = regions[ri];
    if (!r.active_bytes.empty() && r.active_bytes.size() != objects.size()) {
      err << "region " << ri << " active_bytes size " << r.active_bytes.size()
          << " != objects " << objects.size() << "; ";
    }
    std::set<TaskId> seen;
    for (const TaskProgram& t : r.tasks) {
      if (!seen.insert(t.task).second) {
        err << "region " << ri << " has duplicate task " << t.task << "; ";
      }
      for (const Kernel& k : t.kernels) {
        for (const trace::ObjectAccess& a : k.accesses) {
          if (a.object >= objects.size()) {
            err << "region " << ri << " kernel " << k.name
                << " references object " << a.object << " out of range; ";
          }
          if (a.element_bytes == 0) {
            err << "kernel " << k.name << " has zero element_bytes; ";
          }
        }
      }
    }
  }
  return err.str();
}

}  // namespace merch::sim
