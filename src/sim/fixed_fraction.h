// Policy that pins each object's hottest pages so a target heat-weighted
// fraction of its accesses is served from DRAM, then never migrates again.
//
// Used by (a) the correlation-function training-data generator, which needs
// "10 different data placements" per code sample (paper Section 5.1), and
// (b) the Figure 3 reproduction, which sweeps the DRAM-access ratio of
// NWChem-TC phases. Pages are moved through the page table directly (no
// migration traffic): these placements model *allocations*, not runtime
// migration.
#pragma once

#include <string>
#include <vector>

#include "sim/policy.h"

namespace merch::sim {

class FixedFractionPolicy final : public PlacementPolicy {
 public:
  /// One fraction per workload object (heat-weighted access fraction to
  /// serve from DRAM).
  explicit FixedFractionPolicy(std::vector<double> fractions)
      : fractions_(std::move(fractions)) {}

  /// Same fraction for every object.
  static FixedFractionPolicy Uniform(std::size_t num_objects, double fraction) {
    return FixedFractionPolicy(std::vector<double>(num_objects, fraction));
  }

  std::string name() const override { return "FixedFraction"; }

  void OnSimulationStart(SimContext& ctx) override {
    const Workload& w = ctx.workload();
    for (std::size_t i = 0; i < w.objects.size() && i < fractions_.size();
         ++i) {
      const ObjectId handle = ctx.oracle().handle(i);
      const hm::ObjectExtent& e = ctx.pages().extent(handle);
      const std::uint64_t k =
          w.objects[i].heat.PagesForFraction(fractions_[i], e.num_pages);
      ctx.pages().MoveHottest(handle, k, hm::Tier::kDram);
      achieved_.push_back(ctx.ObjectDramFraction(i));
    }
  }

  /// Heat-weighted fractions actually achieved after page-granularity
  /// rounding and capacity limits; valid after the run started.
  const std::vector<double>& achieved() const { return achieved_; }

 private:
  std::vector<double> fractions_;
  std::vector<double> achieved_;
};

}  // namespace merch::sim
