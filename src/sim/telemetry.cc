#include "sim/telemetry.h"

#include "common/stats.h"

namespace merch::sim {

std::vector<double> SimResult::NormalizedTaskTimes() const {
  std::vector<double> out;
  for (const RegionStats& r : regions) {
    if (r.tasks.empty() || r.duration <= 0) continue;
    for (const TaskStats& t : r.tasks) {
      out.push_back(t.exec_seconds / r.duration);
    }
  }
  return out;
}

double SimResult::AverageCoV() const {
  std::vector<double> covs;
  for (const RegionStats& r : regions) {
    if (r.tasks.size() < 2) continue;
    std::vector<double> times;
    times.reserve(r.tasks.size());
    for (const TaskStats& t : r.tasks) times.push_back(t.exec_seconds);
    covs.push_back(CoefficientOfVariation(times));
  }
  return Mean(covs);
}

}  // namespace merch::sim
