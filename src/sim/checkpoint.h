// Engine checkpoints: a complete, serializable snapshot of the simulation
// state at a hook boundary.
//
// The incremental sweep driver (sim/incremental.h) runs one engine for a
// whole ladder of sweep points and forks a point off onto its own engine
// the first time its policy's decisions diverge from the shared
// trajectory. A fork restores one of these checkpoints into a freshly
// constructed engine and resumes mid-run; the contract — enforced by
// tests/checkpoint_test.cc across the {SIMD}x{threads}x{arena} matrix —
// is that the resumed run's SimResult is byte-identical to an
// uninterrupted one.
//
// Contents (everything the epoch loop reads, nothing it rebuilds):
//   clock        t, interval deadline, region index/start, resume phase
//   tasks        per-task kernel cursor, progress, finish time, TaskStats
//   placement    per-page tiers (the residency bitset + Fenwick index are
//                derived state and rebuilt on restore), heat-weighted DRAM
//                weights, hardware-cache fractions, placement version
//   profiling    the access oracle's interval/lifetime accounting
//   traffic      migration queue depth, epoch+lifetime migration stats,
//                background rates and pending charges
//   rng          the PMC-noise generator's exact state
//   telemetry    completed-region stats and bandwidth samples so far
//
// Not captured: memoized timing bases (restore invalidates them — a full
// rebuild against identical placement reproduces identical values bit for
// bit), the per-epoch timing scratch (recomputed by the first fixed-point
// iteration of every epoch), and the page table's per-page access
// counters (never written on the engine path; the oracle is the access
// store).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "hm/migration.h"
#include "hm/tier.h"
#include "sim/oracle.h"
#include "sim/telemetry.h"

namespace merch::sim {

/// Where inside Engine::Run a restored engine resumes. Checkpoints are
/// taken immediately after a policy hook ran, so the phase encodes which
/// engine work is still pending for the current position.
enum class EnginePhase : std::uint32_t {
  /// About to build region `region_index` (covers post-OnSimulationStart
  /// and post-OnRegionEnd positions).
  kRegionTop = 0,
  /// Mid-region, about to continue the epoch loop (post-OnRegionStart).
  kEpochLoop = 1,
  /// Mid-region, an OnInterval hook just ran; the interval reset and
  /// deadline advance are pending, then the epoch loop continues.
  kAfterInterval = 2,
  /// The region's flush OnInterval just ran; the interval reset,
  /// FinishRegion, and OnRegionEnd are pending.
  kAfterFlush = 3,
};

/// One task's in-region execution cursor.
struct TaskCheckpoint {
  std::uint64_t kernel_index = 0;
  double kernel_fraction = 0;
  bool done = false;
  double finish_time = 0;
  TaskStats stats;
};

struct EngineCheckpoint {
  EnginePhase phase = EnginePhase::kRegionTop;
  std::uint64_t region_index = 0;
  double region_start = 0;
  double t = 0;
  double interval_deadline = 0;
  std::uint64_t epochs = 0;

  double migration_queue_bytes = 0;
  double background_pm_rate = 0;
  double background_dram_rate = 0;
  double pending_background_pm = 0;
  double pending_background_dram = 0;

  std::uint64_t placement_version = 1;
  RngState rng;

  std::vector<double> dram_weight;
  std::vector<double> hw_fraction;
  std::vector<hm::Tier> page_tiers;
  AccessOracle::Snapshot oracle;
  hm::MigrationStats migration_epoch;
  hm::MigrationStats migration_lifetime;

  /// Per-task cursors; populated only for in-region phases.
  std::vector<TaskCheckpoint> tasks;
  std::vector<RegionStats> history;
  std::vector<BandwidthSample> bandwidth;

  /// Self-contained binary encoding (magic + version + length-prefixed
  /// fields; doubles are raw IEEE-754 bit patterns, so a round trip is
  /// exact). MERCH_CKPT-style persistence and the fuzz tests use it.
  std::vector<std::uint8_t> ToBytes() const;

  /// Decode; nullopt on truncated input, bad magic, or version mismatch.
  static std::optional<EngineCheckpoint> FromBytes(
      std::span<const std::uint8_t> bytes);
};

}  // namespace merch::sim
