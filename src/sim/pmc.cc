#include "sim/pmc.h"

#include <algorithm>
#include <cmath>

namespace merch::sim {

const std::vector<std::string>& PmcEventNames() {
  static const std::vector<std::string> kNames = {
      "LLC_MPKI",    "IPC",        "PRF_Miss",   "MEM_WCY",
      "L2_LD_Miss",  "BR_MSP",     "VEC_INS",    "L3_LD_Miss",
      "TLB_MPKI",    "L1_MPKI",    "PAGE_WALK",  "ICACHE_MPKI",
      "FE_STALL",    "FP_RATIO",   "UOPS_INS",   "PORT5_UTIL",
      "DIV_ACTIVE",  "SB_FULL",    "RAT_STALL",  "MS_SWITCH",
      "LOCK_CYC",    "SMT_CONT",   "TEMP_VAR",   "PWR_THR",
  };
  return kNames;
}

const std::string& PmcEventName(std::size_t index) {
  return PmcEventNames().at(index);
}

EventVector SynthesizePmcs(const TaskAggregates& agg, Rng& rng, double noise) {
  EventVector e{};
  const double instructions = std::max<double>(1.0, agg.instructions);
  const double kilo_ins = instructions / 1000.0;
  const double cycles =
      std::max(1.0, agg.exec_seconds * agg.core_ghz * 1e9);
  const double mm = agg.mm_accesses;
  const double prog = std::max(1.0, agg.program_accesses);

  e[kLlcMpki] = mm / kilo_ins;
  e[kIpc] = instructions / cycles;
  e[kPrfMiss] = mm > 0 ? agg.prefetch_miss_weighted / mm : 0.0;
  e[kMemWcy] =
      agg.exec_seconds > 0 ? agg.memory_seconds / agg.exec_seconds : 0.0;
  e[kL2LdMiss] = agg.l2_misses / prog;
  // Misprediction rate grows with branchiness; data-dependent branches in
  // irregular code mispredict more.
  const double branchiness = agg.branch_instructions / instructions;
  const double irregularity = e[kPrfMiss];
  e[kBrMsp] = branchiness * (0.01 + 0.08 * irregularity);
  e[kVecIns] = agg.vector_instructions / instructions;
  e[kL3LdMiss] = mm / prog;

  // Correlated distractors: track the memory behaviour through different
  // lenses (they carry signal, but less cleanly than the top events).
  e[kTlbMpki] = 0.15 * e[kLlcMpki] * (0.3 + irregularity);
  e[kL1Mpki] = (agg.l2_misses * 3.0) / kilo_ins;
  e[kPageWalkCyc] = 0.2 * e[kTlbMpki];
  e[kIcacheMpki] = 0.02 + 0.01 * branchiness;

  // Compute-side events: functions of the instruction mix, nearly
  // independent of data placement.
  e[kFeStall] = 0.05 + 0.3 * branchiness;
  e[kFpRatio] = e[kVecIns] * 0.8 + 0.05;
  e[kUopsPerIns] = 1.1 + 0.4 * e[kVecIns];
  e[kPort5Util] = 0.2 + 0.3 * e[kVecIns];
  e[kDivActive] = 0.01 + 0.02 * e[kFpRatio];
  e[kSbFull] = 0.05 + 0.2 * (1.0 - agg.overlap_weighted / std::max(1.0, mm));
  e[kRatStall] = 0.03 + 0.1 * e[kFeStall];
  e[kMsSwitches] = 0.001 + 0.004 * branchiness;
  e[kLockCycles] = 0.002;
  e[kSmtContention] = 0.1;

  // Pure noise.
  e[kCoreTempVar] = rng.NextDoubleInRange(0.0, 1.0);
  e[kPwrThrottle] = rng.NextDoubleInRange(0.0, 1.0);

  if (noise > 0) {
    for (std::size_t i = 0; i < kNumPmcEvents - 2; ++i) {
      e[i] *= std::max(0.0, 1.0 + rng.NextGaussian(0.0, noise));
    }
  }
  return e;
}

}  // namespace merch::sim
