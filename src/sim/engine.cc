#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <latch>
#include <thread>

#include "cachesim/cpu_cache.h"
#include "common/env.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace merch::sim {
namespace {

/// Blend read/write bandwidth of a tier for a given read fraction.
double MixedBandwidthBytesPerSec(const hm::TierSpec& tier, double read_fraction) {
  const double r = std::clamp(read_fraction, 0.0, 1.0);
  const double rb = tier.read_bandwidth_gbps * 1e9;
  const double wb = tier.write_bandwidth_gbps * 1e9;
  // Harmonic blend: time per byte is the mix of per-byte times.
  return 1.0 / (r / rb + (1.0 - r) / wb);
}

/// Read/write-blended access latency: writes pay the tier's write-latency
/// factor (Optane's asymmetric write path). One definition serves both the
/// scalar builder and the lane hoisting, so the two paths share every FP
/// operation.
double BlendedLatencyNs(const hm::TierSpec& tier, double read_fraction,
                        bool sequential) {
  const double base_lat =
      sequential ? tier.seq_latency_ns : tier.rand_latency_ns;
  return base_lat * (read_fraction +
                     (1.0 - read_fraction) * tier.write_latency_factor);
}

/// Minimum live tasks before the fixed point fans TimingFromBase over the
/// pool: below this the latch round-trip costs more than the evals.
constexpr std::size_t kParallelTimingMinTasks = 8;

/// Up-front capacity for the per-epoch bandwidth telemetry (grows beyond
/// this only for very long runs; see SimResult::bandwidth).
constexpr std::size_t kBandwidthReserve = 4096;

using common::EnvToggle;

}  // namespace

// ---------------------------------------------------------------- SimContext

const Workload& SimContext::workload() const { return engine_->workload(); }
const MachineSpec& SimContext::machine() const { return engine_->machine(); }
hm::PageTable& SimContext::pages() { return engine_->pages(); }
hm::MigrationEngine& SimContext::migration() { return engine_->migration(); }
AccessOracle& SimContext::oracle() { return engine_->oracle(); }
double SimContext::now() const { return engine_->now(); }
std::size_t SimContext::region_index() const { return engine_->region_index(); }
const std::vector<RegionStats>& SimContext::history() const {
  return engine_->history();
}
double SimContext::ObjectDramFraction(std::size_t object) const {
  return engine_->ObjectDramFraction(object);
}
void SimContext::SetHwDramFraction(std::size_t object, double fraction) {
  engine_->SetHwDramFraction(object, fraction);
}
void SimContext::AddBackgroundTraffic(double bytes_on_pm,
                                      double bytes_on_dram) {
  engine_->AddBackgroundTraffic(bytes_on_pm, bytes_on_dram);
}

// -------------------------------------------------------------------- Engine

Engine::Engine(const Workload& workload, const MachineSpec& machine,
               SimConfig config, PlacementPolicy* policy)
    : workload_(&workload),
      machine_(machine),
      config_(config),
      policy_(policy),
      rng_(config.seed) {
  assert(workload.Validate().empty() && "invalid workload");
  hw_cache_mode_ = policy_ != nullptr && policy_->uses_hardware_cache();
  sweep_index_ = EnvToggle("MERCH_SWEEP_INDEX", config_.sweep_index);
  timing_memo_ = EnvToggle("MERCH_ENGINE_MEMO", config_.timing_memo);
  // The lane path stores bases in SoA form and probes sweeps through the
  // residency bitset, so it presumes both earlier hatches; turning either
  // off falls all the way back to that path's cost profile.
  simd_ = EnvToggle("MERCH_SIMD", config_.simd) && sweep_index_ && timing_memo_;
  arena_.set_pooled(EnvToggle("MERCH_ARENA", config_.arena));
  if (config_.timing_threads > 1) {
    pool_ = std::make_unique<service::ThreadPool>(config_.timing_threads);
  }
  pages_ = std::make_unique<hm::PageTable>(machine_.hm, config_.page_bytes);
  pages_->set_legacy_scan(!sweep_index_);
  migration_ = std::make_unique<hm::MigrationEngine>(*pages_);
  RegisterObjects();
  oracle_ =
      std::make_unique<AccessOracle>(*workload_, *pages_, handles_,
                                     /*linear_lookup=*/!sweep_index_);
  ctx_ = std::make_unique<SimContext>(*this);

  dram_weight_.assign(workload_->objects.size(), 0.0);
  hw_fraction_.assign(workload_->objects.size(), 0.0);
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    const hm::ObjectExtent& e = pages_->extent(handles_[i]);
    const std::uint64_t on_dram = pages_->object_pages_on(handles_[i], hm::Tier::kDram);
    dram_weight_[i] =
        workload_->objects[i].heat.CumulativeFraction(on_dram, e.num_pages);
  }
  // Keep heat-weighted DRAM fractions current as policies migrate pages,
  // and stamp every move so memoized timing bases know to rebuild. The
  // owner lookup is the page table's dense page->owner map (O(1)).
  pages_->SetMoveListener([this](PageId p, hm::Tier from, hm::Tier to) {
    if (recording_) {
      // Divergence fingerprint: every successful move, in stream order.
      FoldAction(1, p, (static_cast<std::uint64_t>(from) << 1) |
                           static_cast<std::uint64_t>(to));
      record_moves_.push_back(MoveRecord{p, from, to});
    }
    ++placement_version_;
    std::size_t i = handles_.size();
    if (sweep_index_) {
      const std::optional<ObjectId> obj = pages_->ObjectOfPage(p);
      if (!obj.has_value() || *obj >= handles_.size()) return;  // scratch
      i = *obj;  // engine registered first: handle == index
    } else {
      // Pre-index cost profile: linear extent scan (bench baseline only).
      for (std::size_t k = 0; k < handles_.size(); ++k) {
        const hm::ObjectExtent& ek = pages_->extent(handles_[k]);
        if (p >= ek.first_page && p < ek.first_page + ek.num_pages) {
          i = k;
          break;
        }
      }
      if (i == handles_.size()) return;
    }
    const hm::ObjectExtent& e = pages_->extent(handles_[i]);
    const double w = workload_->objects[i].heat.PageFraction(
        p - e.first_page, e.num_pages);
    dram_weight_[i] += (to == hm::Tier::kDram) ? w : -w;
    dram_weight_[i] = std::clamp(dram_weight_[i], 0.0, 1.0);
  });
}

void Engine::RegisterObjects() {
  handles_.reserve(workload_->objects.size());
  for (const ObjectDecl& o : workload_->objects) {
    // Everything starts on PM: the paper's App Direct baseline state (cold
    // data lands on the big tier; policies promote from there).
    auto id = pages_->RegisterObject(o.bytes, hm::Tier::kPm, o.owner);
    assert(id.has_value() && "HM capacity exceeded by workload");
    assert(*id == handles_.size() && "engine handles must be identity-mapped");
    handles_.push_back(*id);
  }
}

double Engine::ObjectDramFraction(std::size_t object) const {
  if (config_.force_tier.has_value()) {
    return *config_.force_tier == hm::Tier::kDram ? 1.0 : 0.0;
  }
  if (hw_cache_mode_) return hw_fraction_[object];
  return dram_weight_[object];
}

void Engine::SetHwDramFraction(std::size_t object, double fraction) {
  const double clamped = std::clamp(fraction, 0.0, 1.0);
  // Record before the bitwise-skip: the fingerprint must capture what the
  // policy *posted*, not what survived the no-op filter (the filter's
  // outcome depends on prior state, which is identical across points that
  // have identical fingerprints — by induction).
  if (recording_) {
    FoldAction(2, object, std::bit_cast<std::uint64_t>(clamped));
  }
  // Bitwise-unchanged fractions cannot change any base: rebuilding against
  // identical inputs reproduces identical costs, so skipping the
  // invalidation is a value-level no-op (hardware-cache policies re-post
  // mostly-stable fractions every interval).
  if (simd_ && hw_fraction_[object] == clamped) return;
  ++placement_version_;
  hw_fraction_[object] = clamped;
}

void Engine::AddBackgroundTraffic(double bytes_on_pm, double bytes_on_dram) {
  if (recording_) {
    FoldAction(3, std::bit_cast<std::uint64_t>(bytes_on_pm),
               std::bit_cast<std::uint64_t>(bytes_on_dram));
  }
  pending_background_pm_ += bytes_on_pm;
  pending_background_dram_ += bytes_on_dram;
}

EngineCounters Engine::counters() const {
  EngineCounters c;
  c.epochs = epochs_;
  c.timing_evals = timing_evals_;
  c.base_builds = base_builds_.load(std::memory_order_relaxed);
  c.partial_refreshes = partial_refreshes_.load(std::memory_order_relaxed);
  return c;
}

// ------------------------------------------------- incremental sweep support

void Engine::FoldAction(std::uint64_t tag, std::uint64_t a, std::uint64_t b) {
  // FNV-1a, one byte at a time: order-sensitive, so the fingerprint is a
  // hash of the action *stream*, not the action *set*.
  const auto fold = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      record_fp_ ^= (v >> (8 * i)) & 0xffu;
      record_fp_ *= 1099511628211ull;
    }
  };
  fold(tag);
  fold(a);
  fold(b);
}

void Engine::BeginActionRecord() {
  recording_ = true;
  record_fp_ = 1469598103934665603ull;  // FNV-1a offset basis
  record_moves_.clear();
  record_mig_base_ = migration_->epoch_stats();
}

Engine::ActionRecord Engine::TakeActionRecord() {
  // Capacity-rejected moves leave no page motion but do mark the epoch
  // stats; folding the stat delta makes points that differ only in failed
  // migrations diverge too.
  const hm::MigrationStats now = migration_->epoch_stats();
  FoldAction(4, now.pages_to_dram - record_mig_base_.pages_to_dram,
             now.pages_to_pm - record_mig_base_.pages_to_pm);
  FoldAction(5, now.bytes_to_dram - record_mig_base_.bytes_to_dram,
             now.bytes_to_pm - record_mig_base_.bytes_to_pm);
  FoldAction(6, now.failed_capacity - record_mig_base_.failed_capacity, 0);
  recording_ = false;
  ActionRecord rec;
  rec.fingerprint = record_fp_;
  rec.moves = std::move(record_moves_);
  record_moves_.clear();
  return rec;
}

Engine::LightState Engine::CaptureLight() const {
  LightState s;
  s.dram_weight = dram_weight_;
  s.hw_fraction = hw_fraction_;
  s.placement_version = placement_version_;
  s.pending_background_pm = pending_background_pm_;
  s.pending_background_dram = pending_background_dram_;
  s.migration_epoch = migration_->epoch_stats();
  s.migration_lifetime = migration_->lifetime_stats();
  return s;
}

void Engine::RestoreLight(const LightState& s) {
  dram_weight_ = s.dram_weight;
  hw_fraction_ = s.hw_fraction;
  placement_version_ = s.placement_version;
  pending_background_pm_ = s.pending_background_pm;
  pending_background_dram_ = s.pending_background_dram;
  migration_->RestoreStats(s.migration_epoch, s.migration_lifetime);
}

void Engine::UndoMoves(std::span<const MoveRecord> moves) {
  // Reverse order: each inverse move returns a page to the slot its own
  // forward move vacated, so capacity can never reject it.
  const bool was_recording = recording_;
  recording_ = false;
  for (std::size_t i = moves.size(); i > 0; --i) {
    const MoveRecord& m = moves[i - 1];
    const bool ok = pages_->MovePage(m.page, m.from);
    (void)ok;
    assert(ok && "inverse move must be feasible");
  }
  recording_ = was_recording;
}

void Engine::RedoMoves(std::span<const MoveRecord> moves) {
  const bool was_recording = recording_;
  recording_ = false;
  for (const MoveRecord& m : moves) {
    const bool ok = pages_->MovePage(m.page, m.to);
    (void)ok;
    assert(ok && "replayed move must be feasible");
  }
  recording_ = was_recording;
}

void Engine::OverrideDramCapacity(std::uint64_t bytes) {
  machine_.hm[hm::Tier::kDram].capacity_bytes = bytes;
  pages_->OverrideTierCapacity(hm::Tier::kDram, bytes);
}

EngineCheckpoint Engine::SaveCheckpoint(HookPoint just_ran) const {
  EngineCheckpoint ck;
  switch (just_ran) {
    case HookPoint::kSimStart:
      ck.phase = EnginePhase::kRegionTop;
      ck.region_index = 0;
      break;
    case HookPoint::kRegionStart:
      ck.phase = EnginePhase::kEpochLoop;
      ck.region_index = region_index_;
      break;
    case HookPoint::kInterval:
      ck.phase = EnginePhase::kAfterInterval;
      ck.region_index = region_index_;
      break;
    case HookPoint::kFlush:
      ck.phase = EnginePhase::kAfterFlush;
      ck.region_index = region_index_;
      break;
    case HookPoint::kRegionEnd:
      ck.phase = EnginePhase::kRegionTop;
      ck.region_index = region_index_ + 1;
      break;
  }
  ck.region_start = region_start_;
  ck.t = t_;
  ck.interval_deadline = interval_deadline_;
  ck.epochs = epochs_;
  ck.migration_queue_bytes = migration_queue_bytes_;
  ck.background_pm_rate = background_pm_rate_;
  ck.background_dram_rate = background_dram_rate_;
  ck.pending_background_pm = pending_background_pm_;
  ck.pending_background_dram = pending_background_dram_;
  ck.placement_version = placement_version_;
  ck.rng = rng_.state();
  ck.dram_weight = dram_weight_;
  ck.hw_fraction = hw_fraction_;
  ck.page_tiers = pages_->SnapshotTiers();
  ck.oracle = oracle_->SnapshotState();
  ck.migration_epoch = migration_->epoch_stats();
  ck.migration_lifetime = migration_->lifetime_stats();
  if (ck.phase != EnginePhase::kRegionTop) {
    ck.tasks.reserve(running_.size());
    for (const TaskRuntime& rt : running_) {
      TaskCheckpoint tc;
      tc.kernel_index = rt.kernel_index;
      tc.kernel_fraction = rt.kernel_fraction;
      tc.done = rt.done;
      tc.finish_time = rt.finish_time;
      tc.stats = rt.stats;
      ck.tasks.push_back(std::move(tc));
    }
  }
  ck.history = history_;
  ck.bandwidth = bandwidth_;
  return ck;
}

void Engine::RestoreCheckpoint(const EngineCheckpoint& ck) {
  region_index_ = static_cast<std::size_t>(ck.region_index);
  region_start_ = ck.region_start;
  t_ = ck.t;
  interval_deadline_ = ck.interval_deadline;
  epochs_ = ck.epochs;
  migration_queue_bytes_ = ck.migration_queue_bytes;
  background_pm_rate_ = ck.background_pm_rate;
  background_dram_rate_ = ck.background_dram_rate;
  pending_background_pm_ = ck.pending_background_pm;
  pending_background_dram_ = ck.pending_background_dram;
  placement_version_ = ck.placement_version;
  rng_.set_state(ck.rng);
  dram_weight_ = ck.dram_weight;
  hw_fraction_ = ck.hw_fraction;
  pages_->RestoreTiers(ck.page_tiers);
  oracle_->RestoreState(ck.oracle);
  migration_->RestoreStats(ck.migration_epoch, ck.migration_lifetime);
  history_ = ck.history;
  bandwidth_ = ck.bandwidth;
  // The per-epoch reuse flag only ever carries across one StepEpoch call;
  // the first fixed-point iteration after resume recomputes it.
  timing_at_final_lambda_ = false;
  stop_requested_ = false;
  if (ck.phase != EnginePhase::kRegionTop) {
    // Rebuild the region runtime (kernels, lane blocks, scratch), then
    // overwrite the freshly initialised task cursors with the checkpointed
    // ones. Memoized bases stay invalid: a full rebuild against identical
    // placement reproduces the memoized values bit for bit.
    assert(region_index_ < workload_->regions.size());
    BuildRegionRuntime(workload_->regions[region_index_]);
    assert(ck.tasks.size() == running_.size() &&
           "checkpoint from a different workload");
    live_tasks_ = 0;
    for (std::size_t i = 0; i < running_.size(); ++i) {
      TaskRuntime& rt = running_[i];
      const TaskCheckpoint& tc = ck.tasks[i];
      rt.kernel_index = static_cast<std::size_t>(tc.kernel_index);
      rt.kernel_fraction = tc.kernel_fraction;
      rt.done = tc.done;
      rt.finish_time = tc.finish_time;
      rt.stats = tc.stats;
      if (!rt.done) ++live_tasks_;
    }
  }
}

Engine::DerivedKernel Engine::DeriveKernel(const Kernel& kernel,
                                           const Region& region) {
  DerivedKernel d;
  d.instructions = kernel.instructions;
  d.branch_instructions = kernel.branch_fraction *
                          static_cast<double>(kernel.instructions);
  d.vector_instructions = kernel.vector_fraction *
                          static_cast<double>(kernel.instructions);
  d.compute_seconds = static_cast<double>(kernel.instructions) /
                      (machine_.base_ipc * machine_.core_ghz * 1e9);
  d.accesses.reserve(kernel.accesses.size());
  for (const trace::ObjectAccess& a : kernel.accesses) {
    const ObjectDecl& decl = workload_->objects[a.object];
    const std::uint64_t active =
        region.active_bytes.empty() ? decl.bytes
                                    : std::max<std::uint64_t>(
                                          region.active_bytes[a.object], 1);
    const double miss = cachesim::MainMemoryMissRate(
        a, active, machine_.cache, decl.reuse_passes, &decl.heat);
    const double l2_rate = cachesim::L2MissRate(a, active, machine_.cache);
    const trace::PatternTraits& traits = trace::TraitsOf(a.pattern);
    DerivedAccess da;
    da.object = a.object;
    da.pattern = a.pattern;
    da.program = static_cast<double>(a.program_accesses);
    da.mm = da.program * miss;
    da.bytes = da.mm * machine_.cache.line_bytes;
    da.read_fraction = a.read_fraction;
    da.mlp = traits.mlp;
    da.overlap = traits.overlap;
    da.prefetch_miss = traits.prefetch_miss;
    da.sequential = traits.sequential_latency;
    da.sweeping = traits.sweeping;
    da.l2_misses = da.program * l2_rate;
    d.has_sweep = d.has_sweep || da.sweeping;
    d.accesses.push_back(da);
  }
  if (simd_) {
    // Hoist every placement-independent per-access term into stride-1
    // lanes, computed by the same helpers (hence the same FP operations)
    // the scalar builder would run on each rebuild.
    LaneBlock& L = d.lanes;
    const std::size_t n = d.accesses.size();
    L.n = n;
    L.mm = arena_.AllocSpan<double>(n);
    L.bytes = arena_.AllocSpan<double>(n);
    L.mlp = arena_.AllocSpan<double>(n);
    L.bw_dram = arena_.AllocSpan<double>(n);
    L.bw_pm = arena_.AllocSpan<double>(n);
    L.lat_dram = arena_.AllocSpan<double>(n);
    L.lat_pm = arena_.AllocSpan<double>(n);
    L.f = arena_.AllocSpan<double>(n);
    L.object = arena_.AllocSpan<std::uint32_t>(n);
    std::size_t n_sweep = 0;
    for (const DerivedAccess& a : d.accesses) n_sweep += a.sweeping ? 1 : 0;
    L.sweep_ix = arena_.AllocSpan<std::uint32_t>(n_sweep);
    const hm::TierSpec& dram = machine_.hm[hm::Tier::kDram];
    const hm::TierSpec& pm = machine_.hm[hm::Tier::kPm];
    std::size_t s = 0;
    double overlap_weight = 0, mm_total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const DerivedAccess& a = d.accesses[i];
      L.mm[i] = a.mm;
      L.bytes[i] = a.bytes;
      L.mlp[i] = a.mlp;
      L.bw_dram[i] = MixedBandwidthBytesPerSec(dram, a.read_fraction);
      L.bw_pm[i] = MixedBandwidthBytesPerSec(pm, a.read_fraction);
      L.lat_dram[i] = BlendedLatencyNs(dram, a.read_fraction, a.sequential);
      L.lat_pm[i] = BlendedLatencyNs(pm, a.read_fraction, a.sequential);
      L.object[i] = static_cast<std::uint32_t>(a.object);
      if (a.sweeping) L.sweep_ix[s++] = static_cast<std::uint32_t>(i);
      // The scalar builder's overlap reduction, in its order.
      overlap_weight += a.overlap * a.mm;
      mm_total += a.mm;
    }
    L.overlap = mm_total > 0 ? overlap_weight / mm_total : 0.0;
  }
  return d;
}

double Engine::SweepDramFraction(std::size_t object, double f0,
                                 double f1) const {
  if (config_.force_tier.has_value()) {
    return *config_.force_tier == hm::Tier::kDram ? 1.0 : 0.0;
  }
  if (hw_cache_mode_) return hw_fraction_[object];
  const hm::ObjectExtent& e = pages_->extent(handles_[object]);
  if (e.num_pages == 0) return 0.0;
  f0 = std::clamp(f0, 0.0, 1.0);
  f1 = std::clamp(f1, f0, 1.0);
  constexpr int kProbes = 16;
  int hits = 0;
  for (int i = 0; i < kProbes; ++i) {
    const double f = f0 + (f1 - f0) * (static_cast<double>(i) + 0.5) / kProbes;
    const auto rank = std::min<std::uint64_t>(
        e.num_pages - 1,
        static_cast<std::uint64_t>(f * static_cast<double>(e.num_pages)));
    const bool on_dram =
        sweep_index_
            ? pages_->page_rank_on_dram(handles_[object], rank)
            : pages_->page(e.first_page + rank).tier == hm::Tier::kDram;
    if (on_dram) ++hits;
  }
  return static_cast<double>(hits) / kProbes;
}

double Engine::SweepDramFractionLanes(std::size_t object, double f0,
                                      double f1) const {
  // Callers (the lane builder) handle force-tier / hardware-cache modes;
  // this is the normal-mode probe with the same clamps and probe formula.
  const hm::ObjectExtent& e = pages_->extent(handles_[object]);
  if (e.num_pages == 0) return 0.0;
  f0 = std::clamp(f0, 0.0, 1.0);
  f1 = std::clamp(f1, f0, 1.0);
  constexpr int kProbes = 16;
  const double num_pages = static_cast<double>(e.num_pages);
  const std::uint64_t last = e.num_pages - 1;
  const double df = f1 - f0;
  std::uint64_t ranks[kProbes];
  // Independent lanes (vectorizable); the probe expression is the scalar
  // path's, operation for operation, including the integer cast.
  for (int i = 0; i < kProbes; ++i) {
    const double f = f0 + df * (static_cast<double>(i) + 0.5) / kProbes;
    ranks[i] = std::min<std::uint64_t>(
        last, static_cast<std::uint64_t>(f * num_pages));
  }
  // Ranks are monotonically non-decreasing, so runs of equal ranks — all
  // 16 of them for objects smaller than the probe count — share one
  // residency-bitset word lookup. The hit count is unchanged.
  const std::span<const std::uint64_t> bits =
      pages_->residency_bits(handles_[object]);
  std::uint64_t prev_rank = ranks[0];
  int prev_hit =
      static_cast<int>((bits[prev_rank >> 6] >> (prev_rank & 63)) & 1u);
  int hits = prev_hit;
  for (int i = 1; i < kProbes; ++i) {
    if (ranks[i] != prev_rank) {
      prev_rank = ranks[i];
      prev_hit =
          static_cast<int>((bits[prev_rank >> 6] >> (prev_rank & 63)) & 1u);
    }
    hits += prev_hit;
  }
  return static_cast<double>(hits) / kProbes;
}

void Engine::ComputeKernelBase(const DerivedKernel& kernel, double progress,
                               KernelBase* out) const {
  base_builds_.fetch_add(1, std::memory_order_relaxed);
  // Sweeping accesses see the placement of the pages they are about to
  // touch; the lookahead window approximates one epoch's advance.
  constexpr double kLookahead = 0.05;
  out->costs.clear();
  out->costs.reserve(kernel.accesses.size());
  out->compute_seconds = kernel.compute_seconds;
  double overlap_weight = 0, mm_total = 0;
  for (const DerivedAccess& a : kernel.accesses) {
    const double f =
        a.sweeping
            ? SweepDramFraction(a.object, progress,
                                std::min(1.0, progress + kLookahead))
            : ObjectDramFraction(a.object);
    AccessCost cost;
    for (int tier_i = 0; tier_i < 2; ++tier_i) {
      const hm::Tier tier = tier_i == 0 ? hm::Tier::kDram : hm::Tier::kPm;
      const double share = tier == hm::Tier::kDram ? f : 1.0 - f;
      if (share <= 0) continue;
      const double accesses = a.mm * share;
      const double bytes = a.bytes * share;
      const hm::TierSpec& spec = machine_.hm[tier];
      const double bw = MixedBandwidthBytesPerSec(spec, a.read_fraction);
      const double lat_ns = BlendedLatencyNs(spec, a.read_fraction,
                                             a.sequential);
      const double t_bw = bytes / bw;
      const double t_lat = accesses * lat_ns * 1e-9 / a.mlp;
      if (tier == hm::Tier::kDram) {
        cost.t_dram = std::max(t_bw, t_lat);
        cost.dram_bytes = bytes;
      } else {
        cost.t_pm = std::max(t_bw, t_lat);
        cost.pm_bytes = bytes;
      }
    }
    out->costs.push_back(cost);
    overlap_weight += a.overlap * a.mm;
    mm_total += a.mm;
  }
  out->overlap = mm_total > 0 ? overlap_weight / mm_total : 0.0;
}

namespace {

/// One lane of the branchless cost loop: exactly the scalar builder's FP
/// sequence for both tiers. share == 0 degenerates to +0.0 everywhere,
/// matching the scalar `share <= 0` skip that leaves the defaults.
inline void CostLane(double f, double mm, double bytes, double mlp,
                     double bw_dram, double bw_pm, double lat_dram,
                     double lat_pm, double* t_dram, double* t_pm,
                     double* b_dram, double* b_pm) {
  const double fd = f;
  const double fp = 1.0 - f;
  const double acc_d = mm * fd;
  const double by_d = bytes * fd;
  const double tbw_d = by_d / bw_dram;
  const double tlat_d = acc_d * lat_dram * 1e-9 / mlp;
  *t_dram = std::max(tbw_d, tlat_d);
  *b_dram = by_d;
  const double acc_p = mm * fp;
  const double by_p = bytes * fp;
  const double tbw_p = by_p / bw_pm;
  const double tlat_p = acc_p * lat_pm * 1e-9 / mlp;
  *t_pm = std::max(tbw_p, tlat_p);
  *b_pm = by_p;
}

}  // namespace

void Engine::ComputeKernelBaseLanes(const DerivedKernel& kernel,
                                    double progress, KernelBase* out) const {
  base_builds_.fetch_add(1, std::memory_order_relaxed);
  constexpr double kLookahead = 0.05;
  const LaneBlock& L = kernel.lanes;
  const std::size_t n = L.n;
  out->n = n;
  out->compute_seconds = kernel.compute_seconds;
  out->overlap = L.overlap;
  // Per-access DRAM fractions. The force-tier and hardware-cache modes
  // collapse to a constant / direct array read for sweeping and
  // non-sweeping lanes alike (SweepDramFraction's early-outs return the
  // identical values), so only the normal mode probes residency.
  double* f = L.f.data();
  const std::uint32_t* obj = L.object.data();
  if (config_.force_tier.has_value()) {
    const double c = *config_.force_tier == hm::Tier::kDram ? 1.0 : 0.0;
    for (std::size_t i = 0; i < n; ++i) f[i] = c;
  } else if (hw_cache_mode_) {
    for (std::size_t i = 0; i < n; ++i) f[i] = hw_fraction_[obj[i]];
  } else {
    for (std::size_t i = 0; i < n; ++i) f[i] = dram_weight_[obj[i]];
    const double p1 = std::min(1.0, progress + kLookahead);
    for (const std::uint32_t ix : L.sweep_ix) {
      f[ix] = SweepDramFractionLanes(obj[ix], progress, p1);
    }
  }
  const double* mm = L.mm.data();
  const double* bytes = L.bytes.data();
  const double* mlp = L.mlp.data();
  const double* bw_d = L.bw_dram.data();
  const double* bw_p = L.bw_pm.data();
  const double* lat_d = L.lat_dram.data();
  const double* lat_p = L.lat_pm.data();
  double* td = out->t_dram.data();
  double* tp = out->t_pm.data();
  double* bd = out->b_dram.data();
  double* bp = out->b_pm.data();
  // Lanes are independent: the compiler is free to vectorize at any width
  // without reordering a single reduction.
  for (std::size_t i = 0; i < n; ++i) {
    CostLane(f[i], mm[i], bytes[i], mlp[i], bw_d[i], bw_p[i], lat_d[i],
             lat_p[i], &td[i], &tp[i], &bd[i], &bp[i]);
  }
  // Order-exact per-tier sums: four independent serial chains, each in
  // the access order TimingFromBase's scalar fold uses.
  double s_td = 0, s_tp = 0, s_bd = 0, s_bp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s_td += td[i];
    s_tp += tp[i];
    s_bd += bd[i];
    s_bp += bp[i];
  }
  out->sum_t_dram = s_td;
  out->sum_t_pm = s_tp;
  out->sum_b_dram = s_bd;
  out->sum_b_pm = s_bp;
}

void Engine::PartialRefreshBaseLanes(const DerivedKernel& kernel,
                                     double progress, KernelBase* out) const {
  partial_refreshes_.fetch_add(1, std::memory_order_relaxed);
  constexpr double kLookahead = 0.05;
  const LaneBlock& L = kernel.lanes;
  // Placement is unchanged (the caller checked the version stamp), so
  // non-sweeping lanes and — in the force/hardware-cache modes — even the
  // sweeping ones would recompute to their current values; only normal-
  // mode sweep windows can move with progress.
  if (!config_.force_tier.has_value() && !hw_cache_mode_) {
    double* f = L.f.data();
    const std::uint32_t* obj = L.object.data();
    const double p1 = std::min(1.0, progress + kLookahead);
    double* td = out->t_dram.data();
    double* tp = out->t_pm.data();
    double* bd = out->b_dram.data();
    double* bp = out->b_pm.data();
    for (const std::uint32_t ix : L.sweep_ix) {
      f[ix] = SweepDramFractionLanes(obj[ix], progress, p1);
      CostLane(f[ix], L.mm[ix], L.bytes[ix], L.mlp[ix], L.bw_dram[ix],
               L.bw_pm[ix], L.lat_dram[ix], L.lat_pm[ix], &td[ix], &tp[ix],
               &bd[ix], &bp[ix]);
    }
    const std::size_t n = out->n;
    double s_td = 0, s_tp = 0, s_bd = 0, s_bp = 0;
    for (std::size_t i = 0; i < n; ++i) {
      s_td += td[i];
      s_tp += tp[i];
      s_bd += bd[i];
      s_bp += bp[i];
    }
    out->sum_t_dram = s_td;
    out->sum_t_pm = s_tp;
    out->sum_b_dram = s_bd;
    out->sum_b_pm = s_bp;
  }
}

Engine::KernelTiming Engine::TimingFromBase(const KernelBase& base,
                                            double lambda_dram,
                                            double lambda_pm) const {
  ++timing_evals_;
  return TimingFromBaseImpl(base, lambda_dram, lambda_pm);
}

Engine::KernelTiming Engine::TimingFromBaseImpl(const KernelBase& base,
                                                double lambda_dram,
                                                double lambda_pm) const {
  KernelTiming out;
  double dram_time = 0, pm_time = 0;
  if (simd_) {
    // Bytes are lambda-independent: the scalar fold's `+=` from zero in
    // access order is exactly the build-time sum. Times match the fold
    // through the sums when lambda == 1.0 (t * 1.0 == t bitwise), and
    // through an in-order fold over the lanes otherwise.
    out.dram_bytes = base.sum_b_dram;
    out.pm_bytes = base.sum_b_pm;
    if (lambda_dram == 1.0) {
      dram_time = base.sum_t_dram;
    } else {
      const double* td = base.t_dram.data();
      for (std::size_t i = 0; i < base.n; ++i) dram_time += td[i] * lambda_dram;
    }
    if (lambda_pm == 1.0) {
      pm_time = base.sum_t_pm;
    } else {
      const double* tp = base.t_pm.data();
      for (std::size_t i = 0; i < base.n; ++i) pm_time += tp[i] * lambda_pm;
    }
  } else {
    for (const AccessCost& c : base.costs) {
      // Processor-sharing contention: when aggregate demand exceeds the
      // tier's service capacity, every request stream on that tier slows
      // by the same factor (queueing inflates both bandwidth- and
      // latency-bound service). This keeps the achieved aggregate rate at
      // or below the physical peak. The factor is linear per access, which
      // is exactly why the base is reusable across contention iterations.
      dram_time += c.t_dram * lambda_dram;
      out.dram_bytes += c.dram_bytes;
      pm_time += c.t_pm * lambda_pm;
      out.pm_bytes += c.pm_bytes;
    }
  }
  const double memory = dram_time + pm_time;
  const double compute = base.compute_seconds;
  // T = C + M - o*min(C, M): o=1 gives perfect overlap (max), o=0 serial.
  out.seconds = compute + memory - base.overlap * std::min(compute, memory);
  out.seconds = std::max(out.seconds, 1e-12);
  out.memory_seconds = out.seconds - compute > 0 ? out.seconds - compute : 0;
  return out;
}

Engine::KernelTiming Engine::TimeKernel(const DerivedKernel& kernel,
                                        double progress, double lambda_dram,
                                        double lambda_pm) const {
  ComputeKernelBase(kernel, progress, &scratch_base_);
  return TimingFromBase(scratch_base_, lambda_dram, lambda_pm);
}

bool Engine::BaseValid(const TaskRuntime& rt) const {
  const KernelBase& b = rt.base;
  if (!b.valid || b.kernel_index != rt.kernel_index) return false;
  if (b.placement_version != placement_version_) return false;
  // Non-sweeping kernels time independently of progress.
  return !rt.kernels[rt.kernel_index].has_sweep ||
         b.progress == rt.kernel_fraction;
}

void Engine::BuildBase(TaskRuntime& rt) {
  const DerivedKernel& dk = rt.kernels[rt.kernel_index];
  KernelBase& b = rt.base;
  if (simd_) {
    // When only the progress window moved (same kernel, same placement
    // stamp), non-sweeping lanes recompute to their current values — skip
    // them and refresh just the sweep lanes; bitwise equal to a full
    // rebuild.
    const bool sweep_only = b.valid && b.kernel_index == rt.kernel_index &&
                            b.placement_version == placement_version_;
    if (sweep_only) {
      PartialRefreshBaseLanes(dk, rt.kernel_fraction, &b);
    } else {
      ComputeKernelBaseLanes(dk, rt.kernel_fraction, &b);
    }
  } else {
    ComputeKernelBase(dk, rt.kernel_fraction, &b);
  }
  b.valid = true;
  b.kernel_index = rt.kernel_index;
  b.progress = rt.kernel_fraction;
  b.placement_version = placement_version_;
}

bool Engine::ParallelFanOutAllowed() const {
  if (config_.timing_fanout_min_lanes == 0) return true;  // forced by tests
  static const unsigned hw_threads = std::thread::hardware_concurrency();
  return hw_threads != 1;
}

void Engine::RefreshKernelBases() {
  rebuild_.clear();
  for (std::size_t i = 0; i < running_.size(); ++i) {
    if (!running_[i].done && !BaseValid(running_[i])) rebuild_.push_back(i);
  }
  if (rebuild_.empty()) return;
  if (pool_ == nullptr || rebuild_.size() == 1 || !ParallelFanOutAllowed()) {
    for (const std::size_t i : rebuild_) BuildBase(running_[i]);
    return;
  }
  // Static chunking: each worker writes only its own tasks' bases, reading
  // placement state that no one mutates mid-epoch; any later reduction
  // over the bases is serial in task order, so pool width cannot change a
  // single result bit.
  const std::size_t chunks = std::min(pool_->thread_count(), rebuild_.size());
  std::latch pending(static_cast<std::ptrdiff_t>(chunks));
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = rebuild_.size() * c / chunks;
    const std::size_t end = rebuild_.size() * (c + 1) / chunks;
    const bool accepted = pool_->Submit([this, begin, end, &pending] {
      for (std::size_t k = begin; k < end; ++k) BuildBase(running_[rebuild_[k]]);
      pending.count_down();
    });
    if (!accepted) {  // pool shut down (not reachable mid-run); stay serial
      for (std::size_t k = begin; k < end; ++k) BuildBase(running_[rebuild_[k]]);
      pending.count_down();
    }
  }
  pending.wait();
}

void Engine::ParallelTimings(double lambda_dram, double lambda_pm) {
  // Same static-chunk discipline as RefreshKernelBases: each worker writes
  // only its own timing_ slots from quiescent bases; the demand reduction
  // that follows is serial in task order on the caller, so pool width
  // cannot change a bit. Evaluations are accounted here, serially.
  const std::size_t chunks = std::min(pool_->thread_count(), running_.size());
  std::latch pending(static_cast<std::ptrdiff_t>(chunks));
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = running_.size() * c / chunks;
    const std::size_t end = running_.size() * (c + 1) / chunks;
    const bool accepted =
        pool_->Submit([this, begin, end, lambda_dram, lambda_pm, &pending] {
          for (std::size_t i = begin; i < end; ++i) {
            if (!running_[i].done) {
              timing_[i] =
                  TimingFromBaseImpl(running_[i].base, lambda_dram, lambda_pm);
            }
          }
          pending.count_down();
        });
    if (!accepted) {  // pool shut down (not reachable mid-run); stay serial
      for (std::size_t i = begin; i < end; ++i) {
        if (!running_[i].done) {
          timing_[i] =
              TimingFromBaseImpl(running_[i].base, lambda_dram, lambda_pm);
        }
      }
      pending.count_down();
    }
  }
  pending.wait();
  timing_evals_ += live_tasks_;
}

void Engine::BuildRegionRuntime(const Region& region) {
  running_.clear();  // drop every span into the arena before rewinding it
  arena_.Reset();
  running_.reserve(region.tasks.size());
  for (const TaskProgram& tp : region.tasks) {
    TaskRuntime rt;
    rt.task = tp.task;
    rt.program = &tp;
    rt.kernels.reserve(tp.kernels.size());
    for (const Kernel& k : tp.kernels) {
      rt.kernels.push_back(DeriveKernel(k, region));
    }
    rt.stats.task = tp.task;
    rt.stats.object_program_accesses.assign(workload_->objects.size(), 0.0);
    rt.stats.object_mm_accesses.assign(workload_->objects.size(), 0.0);
    rt.stats.kernel_seconds.assign(tp.kernels.size(), 0.0);
    rt.stats.agg.core_ghz = machine_.core_ghz;
    running_.push_back(std::move(rt));
  }
  // Region-level fan-out bound: per task, the widest kernel's access count
  // is the most lanes its base can ever hold, so the sum bounds every
  // epoch's active-lane count from above. StepEpoch uses it to skip the
  // per-epoch counting loop when the gate's outcome is already decided.
  region_lane_bound_ = 0;
  for (const TaskRuntime& rt : running_) {
    std::size_t width = 0;
    for (const DerivedKernel& dk : rt.kernels) {
      width = std::max(width, dk.accesses.size());
    }
    region_lane_bound_ += width;
  }
  if (simd_) {
    // One SoA cost table per task, sized for its widest kernel; rebuilds
    // overwrite it in place, so the epoch loop never touches the heap.
    for (TaskRuntime& rt : running_) {
      std::size_t width = 0;
      for (const DerivedKernel& dk : rt.kernels) {
        width = std::max(width, dk.accesses.size());
      }
      rt.base.t_dram = arena_.AllocSpan<double>(width);
      rt.base.t_pm = arena_.AllocSpan<double>(width);
      rt.base.b_dram = arena_.AllocSpan<double>(width);
      rt.base.b_pm = arena_.AllocSpan<double>(width);
    }
  }
  live_tasks_ = running_.size();
  timing_.assign(running_.size(), KernelTiming{});
  rebuild_.reserve(running_.size());
}

void Engine::CollectMigrationTraffic() {
  const hm::MigrationStats stats = migration_->TakeEpochStats();
  migration_queue_bytes_ +=
      static_cast<double>(stats.bytes_to_dram + stats.bytes_to_pm);
}

void Engine::StepEpoch() {
  MERCH_TRACE_SPAN_VAR(epoch_span, obs::Category::kSim, "engine.epoch");
  const double dt = config_.epoch_seconds;
  ++epochs_;
  epoch_span.set_arg("live_tasks", static_cast<std::int64_t>(live_tasks_));

  // Any migrations policies performed since the last epoch become traffic.
  CollectMigrationTraffic();
  const double migration_rate =
      std::min(migration_queue_bytes_ / dt, config_.migration_gbps * 1e9);

  // Placement and sweep windows are fixed for the whole epoch, so one base
  // per task serves every timing evaluation below.
  if (timing_memo_) RefreshKernelBases();

  // Fixed-point contention resolution.
  double lambda_dram = 1.0, lambda_pm = 1.0;
  timing_at_final_lambda_ = false;
  bool fan_out = pool_ != nullptr && timing_memo_ &&
                 live_tasks_ >= kParallelTimingMinTasks &&
                 ParallelFanOutAllowed();
  if (fan_out && config_.timing_fanout_min_lanes > 0) {
    if (region_lane_bound_ < config_.timing_fanout_min_lanes) {
      // The region-wide lane bound already rules the gate out: the active
      // count can never exceed it, so skip the per-epoch counting loop.
      fan_out = false;
    } else {
      // Fan out only when one iteration's serial evaluation work dwarfs a
      // pool round trip; either path computes bitwise-identical timings.
      std::size_t lanes = 0;
      for (const TaskRuntime& rt : running_) {
        if (rt.done) continue;
        lanes += simd_ ? rt.base.n : rt.base.costs.size();
      }
      fan_out = lanes >= config_.timing_fanout_min_lanes;
    }
  }
  for (int iter = 0; iter < 8; ++iter) {
    double demand_dram = migration_rate + background_dram_rate_;
    double demand_pm = migration_rate + background_pm_rate_;
    if (fan_out) {
      ParallelTimings(lambda_dram, lambda_pm);
      for (std::size_t i = 0; i < running_.size(); ++i) {
        if (running_[i].done) continue;
        demand_dram += timing_[i].dram_bytes / timing_[i].seconds;
        demand_pm += timing_[i].pm_bytes / timing_[i].seconds;
      }
    } else {
      for (std::size_t i = 0; i < running_.size(); ++i) {
        TaskRuntime& rt = running_[i];
        if (rt.done) continue;
        timing_[i] = timing_memo_
                         ? TimingFromBase(rt.base, lambda_dram, lambda_pm)
                         : TimeKernel(rt.kernels[rt.kernel_index],
                                      rt.kernel_fraction, lambda_dram,
                                      lambda_pm);
        demand_dram += timing_[i].dram_bytes / timing_[i].seconds;
        demand_pm += timing_[i].pm_bytes / timing_[i].seconds;
      }
    }
    // Multiplicative update: demand was computed *under* the current
    // lambdas, so scaling them by achieved-demand/capacity converges to
    // the processor-sharing fixed point instead of oscillating.
    const double util_dram =
        demand_dram / (machine_.hm[hm::Tier::kDram].read_bandwidth_gbps * 1e9);
    const double util_pm =
        demand_pm / (machine_.hm[hm::Tier::kPm].read_bandwidth_gbps * 1e9);
    const double next_dram = std::max(1.0, lambda_dram * util_dram);
    const double next_pm = std::max(1.0, lambda_pm * util_pm);
    if (std::abs(next_dram - lambda_dram) < 1e-3 * lambda_dram &&
        std::abs(next_pm - lambda_pm) < 1e-3 * lambda_pm && iter >= 1) {
      timing_at_final_lambda_ =
          next_dram == lambda_dram && next_pm == lambda_pm;
      lambda_dram = next_dram;
      lambda_pm = next_pm;
      break;
    }
    if (simd_ && next_dram == lambda_dram && next_pm == lambda_pm) {
      // iter == 0 with bitwise-unchanged lambdas (the uncontended common
      // case; iter >= 1 hits the break above): the next iteration would
      // recompute identical timings and demands, then break with the same
      // lambdas. Skip it outright — a value-level no-op.
      timing_at_final_lambda_ = true;
      break;
    }
    lambda_dram = next_dram;
    lambda_pm = next_pm;
  }

  // Advance tasks.
  double dram_bytes_epoch = 0, pm_bytes_epoch = 0;
  for (std::size_t i = 0; i < running_.size(); ++i) {
    TaskRuntime& rt = running_[i];
    if (rt.done) continue;
    double dt_left = dt;
    bool first_slice = true;
    while (dt_left > 0 && !rt.done) {
      const DerivedKernel& dk = rt.kernels[rt.kernel_index];
      // The first slice reuses the epoch's base directly; later slices
      // (kernel boundary or sweep progress inside the epoch) rebuild it.
      KernelTiming kt;
      if (timing_memo_) {
        if (!BaseValid(rt)) {
          BuildBase(rt);
          first_slice = false;  // timing_[i] predates this base
        }
        if (simd_ && timing_at_final_lambda_ && first_slice) {
          // The fixed point ended on exactly the lambdas timing_[i] was
          // evaluated at, and the base is untouched since: re-evaluating
          // would reproduce timing_[i] bit for bit.
          kt = timing_[i];
        } else {
          kt = TimingFromBase(rt.base, lambda_dram, lambda_pm);
        }
      } else {
        kt = TimeKernel(dk, rt.kernel_fraction, lambda_dram, lambda_pm);
      }
      first_slice = false;
      const double remaining = (1.0 - rt.kernel_fraction) * kt.seconds;
      const double advance = std::min(remaining, dt_left);
      const double dprog = advance / kt.seconds;
      const double f_before = rt.kernel_fraction;
      const double f_after = std::min(1.0, f_before + dprog);

      // Account this slice of the kernel.
      for (const DerivedAccess& a : dk.accesses) {
        const double mm = a.mm * dprog;
        if (a.sweeping) {
          oracle_->AddSweep(a.object, rt.task, f_before, f_after, mm);
        } else {
          oracle_->Add(a.object, rt.task, mm);
        }
        rt.stats.object_program_accesses[a.object] += a.program * dprog;
        rt.stats.object_mm_accesses[a.object] += mm;
        rt.stats.agg.program_accesses += a.program * dprog;
        rt.stats.agg.mm_accesses += mm;
        rt.stats.agg.l2_misses += a.l2_misses * dprog;
        rt.stats.agg.prefetch_miss_weighted += a.prefetch_miss * mm;
        rt.stats.agg.overlap_weighted += a.overlap * mm;
      }
      rt.stats.agg.instructions +=
          static_cast<std::uint64_t>(static_cast<double>(dk.instructions) * dprog);
      rt.stats.agg.branch_instructions += dk.branch_instructions * dprog;
      rt.stats.agg.vector_instructions += dk.vector_instructions * dprog;
      rt.stats.agg.compute_seconds += dk.compute_seconds * dprog;
      rt.stats.agg.memory_seconds += kt.memory_seconds * dprog;
      dram_bytes_epoch += kt.dram_bytes * dprog;
      pm_bytes_epoch += kt.pm_bytes * dprog;
      rt.stats.kernel_seconds[rt.kernel_index] += advance;

      dt_left -= advance;
      rt.kernel_fraction += dprog;
      if (rt.kernel_fraction >= 1.0 - 1e-12) {
        rt.kernel_fraction = 0.0;
        ++rt.kernel_index;
        if (rt.kernel_index >= rt.kernels.size()) {
          rt.done = true;
          --live_tasks_;
          rt.finish_time = t_ + (dt - dt_left);
          MERCH_TRACE_INSTANT_ARG(obs::Category::kSim, "engine.task_done",
                                  "task", rt.task);
        } else {
          MERCH_TRACE_INSTANT_ARG(obs::Category::kSim, "engine.kernel_done",
                                  "kernel", rt.kernel_index - 1);
        }
      }
    }
  }

  // Drain migration queue and background traffic.
  const double migrated = migration_rate * dt;
  migration_queue_bytes_ = std::max(0.0, migration_queue_bytes_ - migrated);
  const double bg_dram = background_dram_rate_ * dt;
  const double bg_pm = background_pm_rate_ * dt;

  BandwidthSample sample;
  sample.t = t_;
  sample.dram_gbps = (dram_bytes_epoch + migrated + bg_dram) / dt / 1e9;
  sample.pm_gbps = (pm_bytes_epoch + migrated + bg_pm) / dt / 1e9;
  sample.migration_gbps = migrated / dt / 1e9;
  bandwidth_.push_back(sample);

  t_ += dt;
}

void Engine::DispatchHook(HookPoint hook) {
  if (hook == HookPoint::kInterval || hook == HookPoint::kFlush) {
    MERCH_TRACE_SPAN(obs::Category::kSim, "engine.interval");
    if (hook_observer_ != nullptr) {
      hook_observer_->OnHook(*this, hook);
    } else {
      RunHookDirect(hook);
    }
    return;
  }
  if (hook_observer_ != nullptr) {
    hook_observer_->OnHook(*this, hook);
    return;
  }
  RunHookDirect(hook);
}

void Engine::RunHookDirect(HookPoint hook) {
  if (policy_ == nullptr) return;
  RunHookForPolicy(*policy_, hook);
}

void Engine::RunHookForPolicy(PlacementPolicy& policy, HookPoint hook) {
  switch (hook) {
    case HookPoint::kSimStart:
      policy.OnSimulationStart(*ctx_);
      break;
    case HookPoint::kRegionStart:
      policy.OnRegionStart(*ctx_, region_index_);
      break;
    case HookPoint::kInterval:
    case HookPoint::kFlush:
      policy.OnInterval(*ctx_);
      break;
    case HookPoint::kRegionEnd:
      policy.OnRegionEnd(*ctx_, region_index_);
      break;
  }
}

void Engine::PostInterval() {
  oracle_->ResetEpoch();
  // Background traffic set during OnInterval applies to the next interval.
  background_pm_rate_ = pending_background_pm_ / config_.interval_seconds;
  background_dram_rate_ = pending_background_dram_ / config_.interval_seconds;
  pending_background_pm_ = 0;
  pending_background_dram_ = 0;
}

void Engine::FinishRegion(const Region& region, double region_start) {
  RegionStats rs;
  rs.name = region.name;
  rs.start_time = region_start;
  rs.tasks.reserve(running_.size());
  double slowest = 0;
  for (TaskRuntime& rt : running_) {
    rt.stats.exec_seconds = rt.finish_time - region_start;
    slowest = std::max(slowest, rt.stats.exec_seconds);
  }
  rs.duration = slowest;
  for (TaskRuntime& rt : running_) {
    rt.stats.barrier_wait = slowest - rt.stats.exec_seconds;
    rt.stats.agg.exec_seconds = rt.stats.exec_seconds;
    rt.stats.pmcs = SynthesizePmcs(rt.stats.agg, rng_, config_.pmc_noise);
    rs.tasks.push_back(std::move(rt.stats));
  }
  history_.push_back(std::move(rs));
}

SimResult Engine::Run() {
  interval_deadline_ = config_.interval_seconds;
  // Size the run-long telemetry up front: one bandwidth sample per epoch,
  // one stats entry per region. Exponential regrowth in the epoch loop
  // would copy the whole history every doubling.
  history_.reserve(workload_->regions.size());
  bandwidth_.reserve(kBandwidthReserve);
  DispatchHook(HookPoint::kSimStart);
  if (stop_requested_) return SimResult{};
  region_index_ = 0;
  return RunInternal(EnginePhase::kRegionTop);
}

SimResult Engine::ResumeRun(const EngineCheckpoint& ck) {
  RestoreCheckpoint(ck);
  history_.reserve(workload_->regions.size());
  bandwidth_.reserve(std::max(bandwidth_.size(), kBandwidthReserve));
  return RunInternal(ck.phase);
}

SimResult Engine::RunInternal(EnginePhase phase) {
  MERCH_TRACE_SPAN_VAR(run_span, obs::Category::kSim, "engine.run");
  run_span.set_arg("regions",
                   static_cast<std::int64_t>(workload_->regions.size()));

  while (region_index_ < workload_->regions.size()) {
    const Region& region = workload_->regions[region_index_];
    MERCH_TRACE_SPAN_VAR(region_span, obs::Category::kSim, "engine.region");
    region_span.set_arg("region",
                        static_cast<std::int64_t>(region_index_));
    if (phase == EnginePhase::kRegionTop) {
      BuildRegionRuntime(region);
      region_start_ = t_;
      DispatchHook(HookPoint::kRegionStart);
      if (stop_requested_) return SimResult{};
      phase = EnginePhase::kEpochLoop;
    }
    if (phase == EnginePhase::kAfterInterval) {
      // The OnInterval hook already ran before the checkpoint; finish the
      // interval's engine-side work and rejoin the epoch loop.
      PostInterval();
      interval_deadline_ += config_.interval_seconds;
      phase = EnginePhase::kEpochLoop;
    }
    if (phase == EnginePhase::kEpochLoop) {
      while (live_tasks_ > 0) {
        StepEpoch();
        if (t_ >= interval_deadline_ - 1e-12) {
          DispatchHook(HookPoint::kInterval);
          if (stop_requested_) return SimResult{};
          PostInterval();
          interval_deadline_ += config_.interval_seconds;
        }
      }
      // Synchronisation point: flush the profiling interval so policies see
      // the region's tail activity (regions shorter than the interval would
      // otherwise never be profiled). The deadline does not advance here.
      DispatchHook(HookPoint::kFlush);
      if (stop_requested_) return SimResult{};
      phase = EnginePhase::kAfterFlush;
    }
    // phase == kAfterFlush: the flush hook ran (just above, or before the
    // checkpoint being resumed); close the region out.
    PostInterval();
    FinishRegion(region, region_start_);
    DispatchHook(HookPoint::kRegionEnd);
    if (stop_requested_) return SimResult{};
    ++region_index_;
    phase = EnginePhase::kRegionTop;
  }

  // One registry update per run, so the hot loops above never touch the
  // shared counters: the memo hit ratio is timing_evals vs base_builds.
  MERCH_METRIC_COUNT("merch_engine_runs_total", 1);
  MERCH_METRIC_COUNT("merch_engine_epochs_total", epochs_);
  MERCH_METRIC_COUNT("merch_engine_timing_evals_total", timing_evals_);
  MERCH_METRIC_COUNT("merch_engine_base_builds_total",
                     base_builds_.load(std::memory_order_relaxed));

  SimResult result;
  result.policy = policy_ != nullptr
                      ? policy_->name()
                      : (config_.force_tier == hm::Tier::kDram ? "DRAM-only"
                                                               : "PM-only");
  result.workload = workload_->name;
  result.regions = history_;
  result.bandwidth = std::move(bandwidth_);
  result.migration = migration_->lifetime_stats();
  double total = 0;
  for (const RegionStats& r : result.regions) total += r.duration;
  result.total_seconds = total;
  return result;
}

SimResult SimulateHomogeneous(const Workload& workload,
                              const MachineSpec& machine, hm::Tier tier,
                              SimConfig config) {
  config.force_tier = tier;
  Engine engine(workload, machine, config, nullptr);
  return engine.Run();
}

}  // namespace merch::sim
