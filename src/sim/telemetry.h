// Simulation outputs: per-epoch bandwidth samples (Figure 6), per-region
// per-task execution statistics (Figures 4 and 5), and migration traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "hm/migration.h"
#include "sim/pmc.h"

namespace merch::sim {

/// One epoch's achieved memory bandwidth (GB/s), split by source.
struct BandwidthSample {
  double t = 0;                // simulated seconds
  double dram_gbps = 0;        // total DRAM traffic
  double pm_gbps = 0;          // total PM traffic
  double migration_gbps = 0;   // page-migration portion (counted in both)
};

/// One task instance's outcome inside one region.
struct TaskStats {
  TaskId task = kInvalidTask;
  double exec_seconds = 0;     // region start -> this task's last kernel
  double barrier_wait = 0;     // idle time until the region's barrier
  TaskAggregates agg;
  EventVector pmcs{};
  /// Per workload-object totals for this task instance.
  std::vector<double> object_program_accesses;
  std::vector<double> object_mm_accesses;
  /// Wall-clock seconds spent in each kernel ("basic block" timings for
  /// the Section 5.2 homogeneous-memory predictor).
  std::vector<double> kernel_seconds;
};

struct RegionStats {
  std::string name;
  double start_time = 0;
  double duration = 0;  // barrier-to-barrier (== slowest task)
  std::vector<TaskStats> tasks;
};

struct SimResult {
  std::string policy;
  std::string workload;
  double total_seconds = 0;
  std::vector<RegionStats> regions;
  std::vector<BandwidthSample> bandwidth;
  hm::MigrationStats migration;

  /// All task exec times across regions, normalized per region to that
  /// region's slowest task (the Figure 5 data series).
  std::vector<double> NormalizedTaskTimes() const;

  /// Average coefficient of variation of task times across regions (the
  /// paper's A.C.V load-balance metric, Section 7.2).
  double AverageCoV() const;
};

}  // namespace merch::sim
