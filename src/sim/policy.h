// Placement-policy interface: the seam where Merchandiser and the baseline
// page-management systems plug into the simulator.
//
// Policies act at three moments: simulation start (offline preparation),
// region start (Merchandiser runs Algorithm 1 here, before task execution —
// "the runtime first employs a heuristic algorithm ... before task
// execution", Section 6), and periodic profiling intervals (hot-page
// detection + migration, as MemoryOptimizer's daemon does).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "hm/migration.h"
#include "hm/page_table.h"
#include "sim/machine.h"
#include "sim/oracle.h"
#include "sim/telemetry.h"
#include "sim/workload.h"

namespace merch::sim {

class Engine;

/// Everything a policy may observe and manipulate. Ground-truth fields a
/// real system could not see (exact future times) are deliberately absent;
/// policies see profiling data (oracle counters = PTE/PEBS equivalents) and
/// completed-region statistics (= their own measurements).
class SimContext {
 public:
  SimContext(Engine& engine) : engine_(&engine) {}

  const Workload& workload() const;
  const MachineSpec& machine() const;
  hm::PageTable& pages();
  hm::MigrationEngine& migration();
  AccessOracle& oracle();
  double now() const;
  std::size_t region_index() const;
  /// Stats of regions that already completed (earlier task instances).
  const std::vector<RegionStats>& history() const;

  /// Heat-weighted fraction of `object`'s accesses currently landing on
  /// DRAM given its page placement (what the object's placement *implies*;
  /// policies use it to audit their own decisions).
  double ObjectDramFraction(std::size_t object) const;

  /// For hardware-cache policies (Memory Mode): override the served-from-
  /// DRAM fraction of an object for subsequent epochs.
  void SetHwDramFraction(std::size_t object, double fraction);

  /// Charge additional memory traffic (cache fills, write-backs) spread
  /// over the next interval.
  void AddBackgroundTraffic(double bytes_on_pm, double bytes_on_dram);

 private:
  Engine* engine_;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::string name() const = 0;

  /// Memory Mode returns true: placement is hardware-managed, the page
  /// table is bypassed, and served-from-DRAM fractions come from
  /// SetHwDramFraction.
  virtual bool uses_hardware_cache() const { return false; }

  virtual void OnSimulationStart(SimContext& /*ctx*/) {}
  virtual void OnRegionStart(SimContext& /*ctx*/, std::size_t /*region*/) {}
  /// Called every config.interval_seconds of simulated time while a region
  /// runs, after telemetry for the interval is finalised and before the
  /// oracle's interval counters reset.
  virtual void OnInterval(SimContext& /*ctx*/) {}
  virtual void OnRegionEnd(SimContext& /*ctx*/, std::size_t /*region*/) {}
};

}  // namespace merch::sim
