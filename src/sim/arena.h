// Bump-pointer arena for the engine's region-scoped SIMD scratch.
//
// The lane-structured timing path (engine.cc, MERCH_SIMD) keeps per-access
// SoA arrays per kernel plus per-task cost tables that are overwritten on
// every base rebuild — allocation patterns that are identical every region
// and whose lifetimes all end at the region barrier. EpochArena carves
// them out of large chunks with a bump pointer and recycles the chunks at
// every Reset, so the epoch loop performs zero allocator traffic after the
// first region warms the pool.
//
// The MERCH_ARENA escape hatch ("0"/"off"/"false") switches to a
// degenerate mode in which every AllocSpan is an individually heap-backed
// block freed at Reset — the pre-arena allocation behaviour. Allocations
// are value-initialised (zeroed) in both modes and callers fully overwrite
// them before reading, so the hatch cannot change a result bit; it only
// changes where the bytes live (tests/engine_equiv_test.cc runs the
// equivalence matrix across both modes).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace merch::sim {

class EpochArena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 1u << 20;

  explicit EpochArena(bool pooled = true,
                      std::size_t chunk_bytes = kDefaultChunkBytes)
      : pooled_(pooled), chunk_bytes_(chunk_bytes) {}

  EpochArena(const EpochArena&) = delete;
  EpochArena& operator=(const EpochArena&) = delete;

  /// Resolve the mode after construction (the engine reads MERCH_ARENA in
  /// its constructor body). Must precede the first AllocSpan.
  void set_pooled(bool pooled) { pooled_ = pooled; }

  /// Invalidates every span handed out since the last Reset. Pooled mode
  /// rewinds the bump pointer over the retained chunks; degenerate mode
  /// releases every block back to the heap.
  void Reset() {
    if (pooled_) {
      for (Chunk& c : chunks_) c.used = 0;
      cursor_ = 0;
    } else {
      chunks_.clear();
      cursor_ = 0;
    }
  }

  /// `n` value-initialised Ts, aligned for T (and at least to 64 bytes so
  /// SoA lanes start on their own cache line). The span is stable until
  /// the next Reset.
  template <typename T>
  std::span<T> AllocSpan(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    if (n == 0) return {};
    const std::size_t bytes = n * sizeof(T);
    std::byte* p = AllocBytes(bytes);
    // Placement value-init: zeroes arithmetic types deterministically.
    T* first = new (p) T[n]();
    return std::span<T>(first, n);
  }

  bool pooled() const { return pooled_; }
  std::size_t allocated_bytes() const {
    std::size_t sum = 0;
    for (const Chunk& c : chunks_) sum += c.size;
    return sum;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  static constexpr std::size_t kAlign = 64;

  std::byte* AllocBytes(std::size_t bytes) {
    const std::size_t need = (bytes + kAlign - 1) / kAlign * kAlign;
    if (!pooled_) {
      Chunk c;
      c.size = need;
      c.data = std::make_unique<std::byte[]>(need + kAlign);
      c.used = need;
      chunks_.push_back(std::move(c));
      return Aligned(chunks_.back().data.get());
    }
    while (cursor_ < chunks_.size() &&
           chunks_[cursor_].used + need > chunks_[cursor_].size) {
      ++cursor_;
    }
    if (cursor_ == chunks_.size()) {
      Chunk c;
      c.size = std::max(chunk_bytes_, need);
      c.data = std::make_unique<std::byte[]>(c.size + kAlign);
      chunks_.push_back(std::move(c));
    }
    Chunk& c = chunks_[cursor_];
    std::byte* p = Aligned(c.data.get()) + c.used;
    c.used += need;
    return p;
  }

  static std::byte* Aligned(std::byte* p) {
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t up = (v + kAlign - 1) / kAlign * kAlign;
    return p + (up - v);
  }

  bool pooled_;
  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0;  // first chunk with free space (pooled mode)
};

}  // namespace merch::sim
