#include "sim/oracle.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace merch::sim {

AccessOracle::AccessOracle(const Workload& workload,
                           const hm::PageTable& pages,
                           std::vector<ObjectId> object_handles,
                           bool linear_lookup)
    : workload_(&workload),
      pages_(&pages),
      handles_(std::move(object_handles)),
      linear_lookup_(linear_lookup) {
  assert(handles_.size() == workload.objects.size());
  const auto tasks = workload.TaskIds();
  max_task_ = tasks.empty() ? 0 : tasks.back() + 1;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    if (handles_[i] >= index_of_handle_.size()) {
      index_of_handle_.resize(handles_[i] + 1,
                              std::numeric_limits<std::size_t>::max());
    }
    index_of_handle_[handles_[i]] = i;
  }
  epoch_by_object_.assign(handles_.size(), 0.0);
  sweeps_by_object_.assign(handles_.size(), {});
  lifetime_by_object_.assign(handles_.size(), 0.0);
  epoch_by_object_task_.assign(handles_.size(),
                               std::vector<double>(max_task_, 0.0));
}

void AccessOracle::Add(std::size_t object, TaskId task, double mm_accesses) {
  assert(object < handles_.size());
  epoch_by_object_[object] += mm_accesses;
  lifetime_by_object_[object] += mm_accesses;
  if (task < max_task_) epoch_by_object_task_[object][task] += mm_accesses;
}

void AccessOracle::AddSweep(std::size_t object, TaskId task, double f0,
                            double f1, double mm_accesses) {
  assert(object < handles_.size());
  lifetime_by_object_[object] += mm_accesses;
  if (task < max_task_) epoch_by_object_task_[object][task] += mm_accesses;
  auto& windows = sweeps_by_object_[object];
  // Merge with the most recent window when contiguous (consecutive epochs
  // of the same kernel): keeps window counts at ~one per kernel slice.
  if (!windows.empty() && std::abs(windows.back().f1 - f0) < 1e-9) {
    windows.back().f1 = f1;
    windows.back().accesses += mm_accesses;
    return;
  }
  windows.push_back(SweepWindow{f0, f1, mm_accesses});
}

void AccessOracle::ResetEpoch() {
  for (auto& v : epoch_by_object_) v = 0.0;
  for (auto& w : sweeps_by_object_) w.clear();
  for (auto& per_task : epoch_by_object_task_) {
    for (auto& v : per_task) v = 0.0;
  }
}

double AccessOracle::ObjectEpochAccesses(std::size_t object) const {
  double sum = epoch_by_object_[object];
  for (const SweepWindow& w : sweeps_by_object_[object]) sum += w.accesses;
  return sum;
}

double AccessOracle::TaskEpochAccesses(TaskId task) const {
  double sum = 0;
  if (task >= max_task_) return 0;
  for (const auto& per_task : epoch_by_object_task_) sum += per_task[task];
  return sum;
}

double AccessOracle::TotalEpochAccesses() const {
  double sum = 0;
  for (std::size_t i = 0; i < epoch_by_object_.size(); ++i) {
    sum += ObjectEpochAccesses(i);
  }
  return sum;
}

double AccessOracle::TaskObjectEpochAccesses(std::size_t object,
                                             TaskId task) const {
  if (task >= max_task_) return 0;
  return epoch_by_object_task_[object][task];
}

double AccessOracle::ObjectLifetimeAccesses(std::size_t object) const {
  return lifetime_by_object_[object];
}

std::uint64_t AccessOracle::num_pages() const { return pages_->num_pages(); }

std::size_t AccessOracle::LocateObject(PageId p) const {
  if (linear_lookup_) {
    // Pre-index cost profile: scan every extent (bench baseline only).
    for (std::size_t i = 0; i < handles_.size(); ++i) {
      const hm::ObjectExtent& e = pages_->extent(handles_[i]);
      if (p >= e.first_page && p < e.first_page + e.num_pages) return i;
    }
    return std::numeric_limits<std::size_t>::max();
  }
  // One-entry memo: consecutive probes usually land in the same extent.
  if (last_located_ < handles_.size()) {
    const hm::ObjectExtent& e = pages_->extent(handles_[last_located_]);
    if (p >= e.first_page && p < e.first_page + e.num_pages &&
        pages_->is_live(handles_[last_located_])) {
      return last_located_;
    }
  }
  // The page table's sorted-extent binary search, mapped back to the
  // workload object index (policies may register extra scratch objects
  // the oracle does not track).
  const std::optional<ObjectId> id = pages_->ObjectOfPage(p);
  if (id.has_value() && *id < index_of_handle_.size()) {
    const std::size_t idx = index_of_handle_[*id];
    if (idx < handles_.size()) last_located_ = idx;
    return idx;
  }
  return std::numeric_limits<std::size_t>::max();
}

double AccessOracle::EpochAccesses(PageId p) const {
  const std::size_t obj = LocateObject(p);
  if (obj == std::numeric_limits<std::size_t>::max()) return 0.0;
  // Idle-object short cut (bit-identical: zero static accesses times any
  // page fraction is exactly +0.0, and there are no windows to add). The
  // legacy cost profile keeps the full heat-profile evaluation.
  if (!linear_lookup_ && epoch_by_object_[obj] == 0.0 &&
      sweeps_by_object_[obj].empty()) {
    return 0.0;
  }
  const hm::ObjectExtent& e = pages_->extent(handles_[obj]);
  const std::uint64_t idx = p - e.first_page;
  double sum = epoch_by_object_[obj] *
               workload_->objects[obj].heat.PageFraction(idx, e.num_pages);
  // Sweep windows: this page's rank interval is [idx/n, (idx+1)/n);
  // each window spreads its accesses uniformly over [f0, f1).
  const double n = static_cast<double>(e.num_pages);
  const double r0 = static_cast<double>(idx) / n;
  const double r1 = static_cast<double>(idx + 1) / n;
  for (const SweepWindow& w : sweeps_by_object_[obj]) {
    const double lo = std::max(r0, w.f0);
    const double hi = std::min(r1, w.f1);
    if (hi > lo && w.f1 > w.f0) {
      sum += w.accesses * (hi - lo) / (w.f1 - w.f0);
    }
  }
  return sum;
}

hm::Tier AccessOracle::PageTier(PageId p) const {
  // Legacy mode loads from the strided PageEntry array (the pre-index
  // memory layout); the default is the dense tier byte array.
  return linear_lookup_ ? pages_->page(p).tier : pages_->page_tier(p);
}

ObjectId AccessOracle::PageObject(PageId p) const {
  const std::size_t obj = LocateObject(p);
  if (obj == std::numeric_limits<std::size_t>::max()) return kInvalidObject;
  return static_cast<ObjectId>(obj);
}

TaskId AccessOracle::PageTask(PageId p) const {
  const ObjectId obj = PageObject(p);
  if (obj == kInvalidObject) return kInvalidTask;
  return workload_->objects[obj].owner;
}

}  // namespace merch::sim
