#include "sim/oracle.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace merch::sim {

AccessOracle::AccessOracle(const Workload& workload,
                           const hm::PageTable& pages,
                           std::vector<ObjectId> object_handles,
                           bool linear_lookup)
    : workload_(&workload),
      pages_(&pages),
      handles_(std::move(object_handles)),
      linear_lookup_(linear_lookup) {
  assert(handles_.size() == workload.objects.size());
  const auto tasks = workload.TaskIds();
  max_task_ = tasks.empty() ? 0 : tasks.back() + 1;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    if (handles_[i] >= index_of_handle_.size()) {
      index_of_handle_.resize(handles_[i] + 1,
                              std::numeric_limits<std::size_t>::max());
    }
    index_of_handle_[handles_[i]] = i;
  }
  epoch_by_object_.assign(handles_.size(), 0.0);
  sweeps_by_object_.assign(handles_.size(), {});
  lifetime_by_object_.assign(handles_.size(), 0.0);
  epoch_by_object_task_.assign(handles_.size(),
                               std::vector<double>(max_task_, 0.0));
}

void AccessOracle::Add(std::size_t object, TaskId task, double mm_accesses) {
  assert(object < handles_.size());
  epoch_by_object_[object] += mm_accesses;
  lifetime_by_object_[object] += mm_accesses;
  if (task < max_task_) epoch_by_object_task_[object][task] += mm_accesses;
}

void AccessOracle::AddSweep(std::size_t object, TaskId task, double f0,
                            double f1, double mm_accesses) {
  assert(object < handles_.size());
  lifetime_by_object_[object] += mm_accesses;
  if (task < max_task_) epoch_by_object_task_[object][task] += mm_accesses;
  auto& windows = sweeps_by_object_[object];
  // Merge with the most recent window when contiguous (consecutive epochs
  // of the same kernel): keeps window counts at ~one per kernel slice.
  if (!windows.empty() && std::abs(windows.back().f1 - f0) < 1e-9) {
    windows.back().f1 = f1;
    windows.back().accesses += mm_accesses;
    return;
  }
  windows.push_back(SweepWindow{f0, f1, mm_accesses});
}

AccessOracle::Snapshot AccessOracle::SnapshotState() const {
  Snapshot snap;
  snap.epoch_by_object = epoch_by_object_;
  snap.lifetime_by_object = lifetime_by_object_;
  snap.sweep_counts.reserve(sweeps_by_object_.size());
  for (const auto& windows : sweeps_by_object_) {
    snap.sweep_counts.push_back(windows.size());
    for (const SweepWindow& w : windows) {
      snap.sweep_data.push_back(w.f0);
      snap.sweep_data.push_back(w.f1);
      snap.sweep_data.push_back(w.accesses);
    }
  }
  snap.epoch_by_object_task.reserve(handles_.size() * max_task_);
  for (const auto& per_task : epoch_by_object_task_) {
    snap.epoch_by_object_task.insert(snap.epoch_by_object_task.end(),
                                     per_task.begin(), per_task.end());
  }
  return snap;
}

void AccessOracle::RestoreState(const Snapshot& snap) {
  assert(snap.epoch_by_object.size() == handles_.size());
  epoch_by_object_ = snap.epoch_by_object;
  lifetime_by_object_ = snap.lifetime_by_object;
  std::size_t d = 0;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    auto& windows = sweeps_by_object_[i];
    windows.clear();
    for (std::uint64_t k = 0; k < snap.sweep_counts[i]; ++k, d += 3) {
      windows.push_back(SweepWindow{snap.sweep_data[d], snap.sweep_data[d + 1],
                                    snap.sweep_data[d + 2]});
    }
  }
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    auto& per_task = epoch_by_object_task_[i];
    for (std::size_t t = 0; t < max_task_; ++t) {
      per_task[t] = snap.epoch_by_object_task[i * max_task_ + t];
    }
  }
  last_located_ = SIZE_MAX;  // memo is value-neutral; drop it
}

void AccessOracle::ResetEpoch() {
  for (auto& v : epoch_by_object_) v = 0.0;
  for (auto& w : sweeps_by_object_) w.clear();
  for (auto& per_task : epoch_by_object_task_) {
    for (auto& v : per_task) v = 0.0;
  }
}

double AccessOracle::ObjectEpochAccesses(std::size_t object) const {
  double sum = epoch_by_object_[object];
  for (const SweepWindow& w : sweeps_by_object_[object]) sum += w.accesses;
  return sum;
}

double AccessOracle::TaskEpochAccesses(TaskId task) const {
  double sum = 0;
  if (task >= max_task_) return 0;
  for (const auto& per_task : epoch_by_object_task_) sum += per_task[task];
  return sum;
}

double AccessOracle::TotalEpochAccesses() const {
  double sum = 0;
  for (std::size_t i = 0; i < epoch_by_object_.size(); ++i) {
    sum += ObjectEpochAccesses(i);
  }
  return sum;
}

double AccessOracle::TaskObjectEpochAccesses(std::size_t object,
                                             TaskId task) const {
  if (task >= max_task_) return 0;
  return epoch_by_object_task_[object][task];
}

double AccessOracle::ObjectLifetimeAccesses(std::size_t object) const {
  return lifetime_by_object_[object];
}

std::uint64_t AccessOracle::num_pages() const { return pages_->num_pages(); }

std::size_t AccessOracle::LocateObject(PageId p) const {
  if (linear_lookup_) {
    // Pre-index cost profile: scan every extent (bench baseline only).
    for (std::size_t i = 0; i < handles_.size(); ++i) {
      const hm::ObjectExtent& e = pages_->extent(handles_[i]);
      if (p >= e.first_page && p < e.first_page + e.num_pages) return i;
    }
    return std::numeric_limits<std::size_t>::max();
  }
  // One-entry memo: consecutive probes usually land in the same extent.
  if (last_located_ < handles_.size()) {
    const hm::ObjectExtent& e = pages_->extent(handles_[last_located_]);
    if (p >= e.first_page && p < e.first_page + e.num_pages &&
        pages_->is_live(handles_[last_located_])) {
      return last_located_;
    }
  }
  // The page table's sorted-extent binary search, mapped back to the
  // workload object index (policies may register extra scratch objects
  // the oracle does not track).
  const std::optional<ObjectId> id = pages_->ObjectOfPage(p);
  if (id.has_value() && *id < index_of_handle_.size()) {
    const std::size_t idx = index_of_handle_[*id];
    if (idx < handles_.size()) last_located_ = idx;
    return idx;
  }
  return std::numeric_limits<std::size_t>::max();
}

double AccessOracle::EpochAccesses(PageId p) const {
  const std::size_t obj = LocateObject(p);
  if (obj == std::numeric_limits<std::size_t>::max()) return 0.0;
  // Idle-object short cut (bit-identical: zero static accesses times any
  // page fraction is exactly +0.0, and there are no windows to add). The
  // legacy cost profile keeps the full heat-profile evaluation.
  if (!linear_lookup_ && epoch_by_object_[obj] == 0.0 &&
      sweeps_by_object_[obj].empty()) {
    return 0.0;
  }
  const hm::ObjectExtent& e = pages_->extent(handles_[obj]);
  const std::uint64_t idx = p - e.first_page;
  // Swept-but-statically-idle objects skip the heat-profile evaluation:
  // zero times any finite positive fraction is exactly +0.0. The legacy
  // cost profile keeps the full evaluation.
  const double stat = epoch_by_object_[obj];
  double sum =
      (!linear_lookup_ && stat == 0.0)
          ? 0.0
          : stat * workload_->objects[obj].heat.PageFraction(idx, e.num_pages);
  // Sweep windows: this page's rank interval is [idx/n, (idx+1)/n);
  // each window spreads its accesses uniformly over [f0, f1).
  const double n = static_cast<double>(e.num_pages);
  const double r0 = static_cast<double>(idx) / n;
  const double r1 = static_cast<double>(idx + 1) / n;
  for (const SweepWindow& w : sweeps_by_object_[obj]) {
    const double lo = std::max(r0, w.f0);
    const double hi = std::min(r1, w.f1);
    if (hi > lo && w.f1 > w.f0) {
      sum += w.accesses * (hi - lo) / (w.f1 - w.f0);
    }
  }
  return sum;
}

void AccessOracle::EpochAccessesBatch(std::span<const PageId> pages,
                                      std::span<double> out) const {
  const std::size_t n = pages.size();
  if (linear_lookup_) {
    // Pre-index cost profile (bench baseline): keep the per-probe extent
    // scan; run hoisting would hide exactly the cost being measured.
    for (std::size_t k = 0; k < n; ++k) out[k] = EpochAccesses(pages[k]);
    return;
  }
  std::size_t i = 0;
  while (i < n) {
    const std::size_t obj = LocateObject(pages[i]);
    if (obj == std::numeric_limits<std::size_t>::max()) {
      out[i] = 0.0;
      ++i;
      continue;
    }
    const hm::ObjectExtent& e = pages_->extent(handles_[obj]);
    const PageId end = e.first_page + e.num_pages;
    std::size_t j = i + 1;
    while (j < n && pages[j] >= e.first_page && pages[j] < end) ++j;
    const double stat = epoch_by_object_[obj];
    const auto& windows = sweeps_by_object_[obj];
    if (!linear_lookup_ && stat == 0.0 && windows.empty()) {
      for (; i < j; ++i) out[i] = 0.0;  // idle object: whole run is zero
      continue;
    }
    const trace::HeatProfile& heat = workload_->objects[obj].heat;
    const double np = static_cast<double>(e.num_pages);
    // Uniform heat gives every page the same fraction (PageFraction
    // returns 1.0/n verbatim), so the static product hoists out of the
    // loop with identical bits. Zipf stays per-page (pow of the rank).
    const bool skip_static = !linear_lookup_ && stat == 0.0;
    const bool uniform = heat.kind() == trace::HeatProfile::Kind::kUniform;
    const double uniform_static =
        (skip_static || !uniform) ? 0.0 : stat * (1.0 / np);
    for (; i < j; ++i) {
      const std::uint64_t idx = pages[i] - e.first_page;
      double sum = skip_static ? 0.0
                   : uniform   ? uniform_static
                               : stat * heat.PageFraction(idx, e.num_pages);
      const double r0 = static_cast<double>(idx) / np;
      const double r1 = static_cast<double>(idx + 1) / np;
      for (const SweepWindow& w : windows) {
        const double lo = std::max(r0, w.f0);
        const double hi = std::min(r1, w.f1);
        if (hi > lo && w.f1 > w.f0) {
          sum += w.accesses * (hi - lo) / (w.f1 - w.f0);
        }
      }
      out[i] = sum;
    }
  }
}

double AccessOracle::EpochAccessesFloor(PageId p) const {
  const std::size_t obj = LocateObject(p);
  if (obj == std::numeric_limits<std::size_t>::max()) return 0.0;
  const hm::ObjectExtent& ext = pages_->extent(handles_[obj]);
  if (ext.num_pages == 0) return 0.0;
  // Static term: PageFraction is non-increasing in the page rank (Zipf
  // decays, uniform is flat), so rank n-1 carries the smallest share.
  const double e = epoch_by_object_[obj];
  double bound = 0.0;
  if (e > 0.0) {
    bound = e * workload_->objects[obj].heat.PageFraction(ext.num_pages - 1,
                                                          ext.num_pages);
  }
  // Window term: each page interval of width 1/n integrates the windows'
  // point density, so it collects at least (min density over [0,1)) / n.
  // A sweep over window edges finds that minimum; any coverage gap makes
  // it zero. Fully swept objects — the ones that fill DRAM during a
  // region — thus get a positive floor even with no static heat.
  const auto& windows = sweeps_by_object_[obj];
  if (!windows.empty()) {
    std::vector<std::pair<double, double>> edges;  // (coordinate, +/-density)
    edges.reserve(2 * windows.size());
    for (const SweepWindow& w : windows) {
      if (w.f1 > w.f0 && w.accesses > 0.0) {
        const double d = w.accesses / (w.f1 - w.f0);
        edges.emplace_back(w.f0, d);
        edges.emplace_back(w.f1, -d);
      }
    }
    double dmin = std::numeric_limits<double>::infinity();
    if (edges.empty()) {
      dmin = 0.0;
    } else {
      std::sort(edges.begin(), edges.end());
      double cur = 0.0;
      double x = 0.0;
      std::size_t k = 0;
      while (k < edges.size()) {
        const double nx = edges[k].first;
        if (nx > x) dmin = std::min(dmin, cur);
        while (k < edges.size() && edges[k].first == nx) {
          cur += edges[k].second;
          ++k;
        }
        x = nx;
      }
      if (x < 1.0) dmin = std::min(dmin, cur);
    }
    if (std::isfinite(dmin) && dmin > 0.0) {
      bound += dmin / static_cast<double>(ext.num_pages);
    }
  }
  // Relative shave: the bound is derived with fresh roundings, so give
  // back a hair more than accumulated FP error before comparing against
  // per-page values computed along a different operation sequence.
  return bound * (1.0 - 1e-9);
}

hm::Tier AccessOracle::PageTier(PageId p) const {
  // Legacy mode loads from the strided PageEntry array (the pre-index
  // memory layout); the default is the dense tier byte array.
  return linear_lookup_ ? pages_->page(p).tier : pages_->page_tier(p);
}

ObjectId AccessOracle::PageObject(PageId p) const {
  const std::size_t obj = LocateObject(p);
  if (obj == std::numeric_limits<std::size_t>::max()) return kInvalidObject;
  return static_cast<ObjectId>(obj);
}

TaskId AccessOracle::PageTask(PageId p) const {
  const ObjectId obj = PageObject(p);
  if (obj == kInvalidObject) return kInvalidTask;
  return workload_->objects[obj].owner;
}

}  // namespace merch::sim
