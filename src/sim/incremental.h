// Incremental sweep driver: delta simulation across a ladder of sweep
// points.
//
// A parameter sweep (merchctl sweep, bench/engine_speed's fig4 ladder)
// runs the same workload under many configurations — different policies,
// different DRAM budgets. Those runs are identical until the first moment
// a policy *decision* differs, which for most point pairs is late or
// never: a policy that never hits the capacity wall behaves the same at
// 0.5x and 1.0x DRAM, and pm/mo/merch agree on every hook of a region
// whose working set fits either way.
//
// The driver exploits that by running ONE engine for a whole ladder and
// keeping the other points attached as passengers. At every policy hook it
// sandboxes each passenger's policy against the shared state (capture →
// probe → exact rollback; see Engine::BeginActionRecord) and compares
// divergence fingerprints — an order-sensitive hash of the policy's
// complete mutation stream. Equal fingerprints mean the passenger's run
// would have evolved bit-identically, so it keeps riding and skips every
// epoch the parent executes. The first unequal fingerprint forks the
// passenger onto its own engine, restored from a checkpoint taken at that
// exact hook (after the passenger's own actions were applied), and the
// forked set recursively forms a sub-ladder — a prefix-sharing fork tree.
//
// Results are byte-identical to running every point standalone; the
// engine-equivalence and checkpoint fuzz tests enforce this.
//
// Ladder membership rules (checked by RunIncrementalSweep):
//   - every point shares the workload and SimConfig;
//   - machines may differ ONLY in DRAM capacity (bandwidths and latencies
//     feed the timing math directly, so identical action streams under
//     different bandwidths would still time differently);
//   - uses_hardware_cache() must match within a ladder (it selects which
//     state array ObjectDramFraction reads — a structural difference).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/policy.h"
#include "sim/telemetry.h"
#include "sim/workload.h"

namespace merch::sim {

/// One sweep point: a machine (DRAM budget) and the policy to run on it.
/// The policy object is probed at every hook even while the point rides a
/// shared engine, so after the sweep it has lived through exactly the
/// hooks of an uninterrupted run — stateful policies work unchanged.
struct SweepPointSpec {
  MachineSpec machine;
  /// Null runs the point standalone under config.force_tier semantics.
  PlacementPolicy* policy = nullptr;
};

struct SweepPointOutcome {
  SimResult result;
  /// ObjectDramFraction per workload object at simulation end (placement
  /// output for service callers).
  std::vector<double> final_dram_fraction;
  /// How many times this point was re-rooted onto a forked engine.
  std::uint64_t checkpoint_forks = 0;
  /// Epochs inherited from shared parent trajectories.
  std::uint64_t epochs_skipped = 0;
  /// Epochs this point's own engine actually stepped.
  std::uint64_t epochs_executed = 0;
};

/// Run every point and return outcomes in input order. Points are grouped
/// into ladders by uses_hardware_cache(); null-policy points run
/// standalone. Each outcome's SimResult is byte-identical to
/// Engine(workload, spec.machine, config, spec.policy).Run().
std::vector<SweepPointOutcome> RunIncrementalSweep(
    const Workload& workload, const SimConfig& config,
    std::span<const SweepPointSpec> specs);

}  // namespace merch::sim
