// Analytic access oracle: per-interval, per-object access accounting.
//
// Tracking per-4KiB-page counters for TiB-scale address spaces is
// infeasible, so the engine records object-level main-memory access totals
// and the oracle materialises per-page counts on demand through each
// object's heat profile. Profilers consume it through the PageAccessSource
// interface, exactly as they would consume real PTE accessed bits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "hm/page_table.h"
#include "sim/workload.h"
#include "trace/access_source.h"

namespace merch::sim {

class AccessOracle final : public trace::PageAccessSource {
 public:
  /// `linear_lookup` replaces the O(log n) page->object binary search with
  /// the pre-index linear extent scan — only for benchmarking the legacy
  /// engine's cost profile (bench/engine_speed); results are identical.
  AccessOracle(const Workload& workload, const hm::PageTable& pages,
               std::vector<ObjectId> object_handles,
               bool linear_lookup = false);

  /// Record `mm_accesses` main-memory accesses by `task` to workload object
  /// index `object` during the current interval, distributed over pages by
  /// the object's static heat profile (random-pattern accesses).
  void Add(std::size_t object, TaskId task, double mm_accesses);

  /// Record a *sweep* slice: `mm_accesses` accesses landing uniformly on
  /// the page-rank window [f0, f1) of the object (sequential patterns
  /// touch pages in rank order as the kernel progresses). Adjacent slices
  /// from consecutive epochs merge.
  void AddSweep(std::size_t object, TaskId task, double f0, double f1,
                double mm_accesses);

  /// Zero the interval counters (called at interval boundaries after
  /// policies have consumed them).
  void ResetEpoch();

  /// Interval totals.
  double ObjectEpochAccesses(std::size_t object) const;
  double TaskEpochAccesses(TaskId task) const;
  double TotalEpochAccesses() const;
  /// Accesses by `task` to `object` this interval.
  double TaskObjectEpochAccesses(std::size_t object, TaskId task) const;

  /// Lifetime totals (whole simulation so far).
  double ObjectLifetimeAccesses(std::size_t object) const;

  /// Exact lower bound of EpochAccesses over *every* page of the object
  /// containing `p`: the static-heat term at the object's coldest page
  /// rank (sweep windows only ever add). FP rounding is monotone, so the
  /// bound holds bitwise, not just mathematically. Eviction gathers use
  /// it to skip whole hot objects without changing which pages they pick.
  double EpochAccessesFloor(PageId p) const;

  // --- trace::PageAccessSource ---
  std::uint64_t num_pages() const override;
  double EpochAccesses(PageId p) const override;
  /// Run-hoisted batch: consecutive pages from one extent share a single
  /// object lookup, idle-object zero fill, and hoisted static/window
  /// state. Bitwise equal to per-page EpochAccesses.
  void EpochAccessesBatch(std::span<const PageId> pages,
                          std::span<double> out) const override;
  hm::Tier PageTier(PageId p) const override;
  ObjectId PageObject(PageId p) const override;
  TaskId PageTask(PageId p) const override;

  /// PageTable object id for workload object index `i`.
  ObjectId handle(std::size_t i) const { return handles_[i]; }

  /// Complete interval/lifetime accounting state, flattened into plain
  /// arrays so the engine checkpoint can serialize it without knowing the
  /// oracle's internal window layout. Restore is lossless: the rebuilt
  /// window vectors compare element-for-element equal to the originals
  /// (the LocateObject memo is value-neutral and just resets).
  struct Snapshot {
    std::vector<double> epoch_by_object;
    std::vector<double> lifetime_by_object;
    std::vector<std::uint64_t> sweep_counts;  // windows per object
    std::vector<double> sweep_data;           // (f0, f1, accesses) triples
    std::vector<double> epoch_by_object_task;  // row-major [object][task]
  };
  Snapshot SnapshotState() const;
  void RestoreState(const Snapshot& snap);

 private:
  struct SweepWindow {
    double f0 = 0, f1 = 0;  // page-rank fractions
    double accesses = 0;
  };

  /// Workload object index owning page `p`, or SIZE_MAX. Keeps a
  /// one-entry memo of the last located object: page probes arrive in
  /// runs within one extent (profiler scans, eviction gathers), so most
  /// calls skip the binary search. Not thread-safe — every caller
  /// (profilers, policies, the engine's serial advance loop) runs on the
  /// simulation thread; the parallel timing path never locates pages.
  std::size_t LocateObject(PageId p) const;

  const Workload* workload_;
  const hm::PageTable* pages_;
  std::vector<ObjectId> handles_;         // workload index -> PageTable id
  std::vector<std::size_t> index_of_handle_;  // PageTable id -> workload index
  bool linear_lookup_ = false;
  mutable std::size_t last_located_ = SIZE_MAX;  // LocateObject memo
  std::vector<double> epoch_by_object_;   // static-heat portion
  std::vector<std::vector<SweepWindow>> sweeps_by_object_;
  std::vector<double> lifetime_by_object_;
  // Flattened (object, task) interval counters: tasks are dense small ids.
  std::vector<std::vector<double>> epoch_by_object_task_;
  std::size_t max_task_ = 0;
};

}  // namespace merch::sim
