#include "sim/checkpoint.h"

#include <cstring>

namespace merch::sim {
namespace {

constexpr std::uint32_t kMagic = 0x4D434B50;  // "MCKP"
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void U8(std::uint8_t v) { out_->push_back(v); }

  void VecF64(const std::vector<double>& v) {
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(double));
  }
  void VecU64(const std::vector<std::uint64_t>& v) {
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(std::uint64_t));
  }
  void Str(const std::string& s) {
    U64(s.size());
    if (!s.empty()) Raw(s.data(), s.size());
  }

 private:
  void Raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_->insert(out_->end(), b, b + n);
  }

  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == in_.size(); }

  std::uint32_t U32() { std::uint32_t v = 0; Raw(&v, sizeof v); return v; }
  std::uint64_t U64() { std::uint64_t v = 0; Raw(&v, sizeof v); return v; }
  double F64() { double v = 0; Raw(&v, sizeof v); return v; }
  std::uint8_t U8() { std::uint8_t v = 0; Raw(&v, sizeof v); return v; }

  std::vector<double> VecF64() {
    const std::uint64_t n = U64();
    std::vector<double> v;
    if (!Check(n, sizeof(double))) return v;
    v.resize(n);
    if (n != 0) Raw(v.data(), n * sizeof(double));
    return v;
  }
  std::vector<std::uint64_t> VecU64() {
    const std::uint64_t n = U64();
    std::vector<std::uint64_t> v;
    if (!Check(n, sizeof(std::uint64_t))) return v;
    v.resize(n);
    if (n != 0) Raw(v.data(), n * sizeof(std::uint64_t));
    return v;
  }
  std::string Str() {
    const std::uint64_t n = U64();
    std::string s;
    if (!Check(n, 1)) return s;
    s.resize(n);
    if (n != 0) Raw(s.data(), n);
    return s;
  }

 private:
  bool Check(std::uint64_t n, std::size_t elem) {
    // Reject length prefixes pointing past the buffer before allocating.
    if (!ok_ || n > (in_.size() - pos_) / elem) {
      ok_ = false;
      return false;
    }
    return true;
  }
  void Raw(void* p, std::size_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void PutStats(Writer& w, const hm::MigrationStats& s) {
  w.U64(s.pages_to_dram);
  w.U64(s.pages_to_pm);
  w.U64(s.bytes_to_dram);
  w.U64(s.bytes_to_pm);
  w.U64(s.failed_capacity);
}

hm::MigrationStats GetStats(Reader& r) {
  hm::MigrationStats s;
  s.pages_to_dram = r.U64();
  s.pages_to_pm = r.U64();
  s.bytes_to_dram = r.U64();
  s.bytes_to_pm = r.U64();
  s.failed_capacity = r.U64();
  return s;
}

void PutTaskStats(Writer& w, const TaskStats& s) {
  w.U32(s.task);
  w.F64(s.exec_seconds);
  w.F64(s.barrier_wait);
  w.U64(s.agg.instructions);
  w.F64(s.agg.program_accesses);
  w.F64(s.agg.mm_accesses);
  w.F64(s.agg.l2_misses);
  w.F64(s.agg.prefetch_miss_weighted);
  w.F64(s.agg.overlap_weighted);
  w.F64(s.agg.branch_instructions);
  w.F64(s.agg.vector_instructions);
  w.F64(s.agg.exec_seconds);
  w.F64(s.agg.compute_seconds);
  w.F64(s.agg.memory_seconds);
  w.F64(s.agg.core_ghz);
  for (const double v : s.pmcs) w.F64(v);
  w.VecF64(s.object_program_accesses);
  w.VecF64(s.object_mm_accesses);
  w.VecF64(s.kernel_seconds);
}

TaskStats GetTaskStats(Reader& r) {
  TaskStats s;
  s.task = r.U32();
  s.exec_seconds = r.F64();
  s.barrier_wait = r.F64();
  s.agg.instructions = r.U64();
  s.agg.program_accesses = r.F64();
  s.agg.mm_accesses = r.F64();
  s.agg.l2_misses = r.F64();
  s.agg.prefetch_miss_weighted = r.F64();
  s.agg.overlap_weighted = r.F64();
  s.agg.branch_instructions = r.F64();
  s.agg.vector_instructions = r.F64();
  s.agg.exec_seconds = r.F64();
  s.agg.compute_seconds = r.F64();
  s.agg.memory_seconds = r.F64();
  s.agg.core_ghz = r.F64();
  for (double& v : s.pmcs) v = r.F64();
  s.object_program_accesses = r.VecF64();
  s.object_mm_accesses = r.VecF64();
  s.kernel_seconds = r.VecF64();
  return s;
}

}  // namespace

std::vector<std::uint8_t> EngineCheckpoint::ToBytes() const {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(static_cast<std::uint32_t>(phase));
  w.U64(region_index);
  w.F64(region_start);
  w.F64(t);
  w.F64(interval_deadline);
  w.U64(epochs);
  w.F64(migration_queue_bytes);
  w.F64(background_pm_rate);
  w.F64(background_dram_rate);
  w.F64(pending_background_pm);
  w.F64(pending_background_dram);
  w.U64(placement_version);
  for (const std::uint64_t s : rng.s) w.U64(s);
  w.U8(rng.have_cached_gaussian ? 1 : 0);
  w.F64(rng.cached_gaussian);
  w.VecF64(dram_weight);
  w.VecF64(hw_fraction);
  w.U64(page_tiers.size());
  for (const hm::Tier t : page_tiers) {
    w.U8(static_cast<std::uint8_t>(t));
  }
  w.VecF64(oracle.epoch_by_object);
  w.VecF64(oracle.lifetime_by_object);
  w.VecU64(oracle.sweep_counts);
  w.VecF64(oracle.sweep_data);
  w.VecF64(oracle.epoch_by_object_task);
  PutStats(w, migration_epoch);
  PutStats(w, migration_lifetime);
  w.U64(tasks.size());
  for (const TaskCheckpoint& tc : tasks) {
    w.U64(tc.kernel_index);
    w.F64(tc.kernel_fraction);
    w.U8(tc.done ? 1 : 0);
    w.F64(tc.finish_time);
    PutTaskStats(w, tc.stats);
  }
  w.U64(history.size());
  for (const RegionStats& rs : history) {
    w.Str(rs.name);
    w.F64(rs.start_time);
    w.F64(rs.duration);
    w.U64(rs.tasks.size());
    for (const TaskStats& ts : rs.tasks) PutTaskStats(w, ts);
  }
  w.U64(bandwidth.size());
  for (const BandwidthSample& b : bandwidth) {
    w.F64(b.t);
    w.F64(b.dram_gbps);
    w.F64(b.pm_gbps);
    w.F64(b.migration_gbps);
  }
  return out;
}

std::optional<EngineCheckpoint> EngineCheckpoint::FromBytes(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  if (r.U32() != kMagic || r.U32() != kVersion) return std::nullopt;
  EngineCheckpoint ck;
  const std::uint32_t phase = r.U32();
  if (phase > static_cast<std::uint32_t>(EnginePhase::kAfterFlush)) {
    return std::nullopt;
  }
  ck.phase = static_cast<EnginePhase>(phase);
  ck.region_index = r.U64();
  ck.region_start = r.F64();
  ck.t = r.F64();
  ck.interval_deadline = r.F64();
  ck.epochs = r.U64();
  ck.migration_queue_bytes = r.F64();
  ck.background_pm_rate = r.F64();
  ck.background_dram_rate = r.F64();
  ck.pending_background_pm = r.F64();
  ck.pending_background_dram = r.F64();
  ck.placement_version = r.U64();
  for (std::uint64_t& s : ck.rng.s) s = r.U64();
  ck.rng.have_cached_gaussian = r.U8() != 0;
  ck.rng.cached_gaussian = r.F64();
  ck.dram_weight = r.VecF64();
  ck.hw_fraction = r.VecF64();
  const std::uint64_t npages = r.U64();
  if (!r.ok() || npages > bytes.size()) return std::nullopt;
  ck.page_tiers.reserve(npages);
  for (std::uint64_t i = 0; i < npages; ++i) {
    const std::uint8_t t = r.U8();
    if (t >= hm::kNumTiers) return std::nullopt;
    ck.page_tiers.push_back(static_cast<hm::Tier>(t));
  }
  ck.oracle.epoch_by_object = r.VecF64();
  ck.oracle.lifetime_by_object = r.VecF64();
  ck.oracle.sweep_counts = r.VecU64();
  ck.oracle.sweep_data = r.VecF64();
  ck.oracle.epoch_by_object_task = r.VecF64();
  ck.migration_epoch = GetStats(r);
  ck.migration_lifetime = GetStats(r);
  const std::uint64_t ntasks = r.U64();
  if (!r.ok() || ntasks > bytes.size()) return std::nullopt;
  ck.tasks.reserve(ntasks);
  for (std::uint64_t i = 0; i < ntasks; ++i) {
    TaskCheckpoint tc;
    tc.kernel_index = r.U64();
    tc.kernel_fraction = r.F64();
    tc.done = r.U8() != 0;
    tc.finish_time = r.F64();
    tc.stats = GetTaskStats(r);
    ck.tasks.push_back(std::move(tc));
  }
  const std::uint64_t nregions = r.U64();
  if (!r.ok() || nregions > bytes.size()) return std::nullopt;
  ck.history.reserve(nregions);
  for (std::uint64_t i = 0; i < nregions; ++i) {
    RegionStats rs;
    rs.name = r.Str();
    rs.start_time = r.F64();
    rs.duration = r.F64();
    const std::uint64_t nt = r.U64();
    if (!r.ok() || nt > bytes.size()) return std::nullopt;
    rs.tasks.reserve(nt);
    for (std::uint64_t k = 0; k < nt; ++k) rs.tasks.push_back(GetTaskStats(r));
    ck.history.push_back(std::move(rs));
  }
  const std::uint64_t nsamples = r.U64();
  if (!r.ok() || nsamples > bytes.size() / 8) return std::nullopt;
  ck.bandwidth.reserve(nsamples);
  for (std::uint64_t i = 0; i < nsamples; ++i) {
    BandwidthSample b;
    b.t = r.F64();
    b.dram_gbps = r.F64();
    b.pm_gbps = r.F64();
    b.migration_gbps = r.F64();
    ck.bandwidth.push_back(b);
  }
  if (!r.AtEnd()) return std::nullopt;
  return ck;
}

}  // namespace merch::sim
