// Performance monitoring counter (PMC) synthesis.
//
// The paper's correlation function f(PMCs, r_dram) takes 8 hardware events
// selected by Gini importance out of "all collectable events" (Section
// 5.1). The simulator stands in for the PMU: it synthesises a 24-event
// vector per task from the task's workload structure and achieved timing.
// The 8 paper events are genuine functions of memory behaviour; the rest
// are weakly-correlated or pure-noise distractors, so the event-selection
// study (Figure 7, Table 3) has something real to select against.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace merch::sim {

/// Indices into an event vector. First eight are the paper's selected
/// events in its importance order (Section 5.1).
enum PmcEvent : std::size_t {
  kLlcMpki = 0,   // LLC misses per kilo-instruction
  kIpc = 1,       // instructions per cycle
  kPrfMiss = 2,   // prefetch miss ratio
  kMemWcy = 3,    // memory wait (stall) cycle ratio
  kL2LdMiss = 4,  // L2 load miss ratio
  kBrMsp = 5,     // branch misprediction ratio
  kVecIns = 6,    // vector instruction ratio
  kL3LdMiss = 7,  // L3 load miss ratio
  // Correlated distractors.
  kTlbMpki = 8,
  kL1Mpki = 9,
  kPageWalkCyc = 10,
  kIcacheMpki = 11,
  // Weakly correlated compute-side events.
  kFeStall = 12,
  kFpRatio = 13,
  kUopsPerIns = 14,
  kPort5Util = 15,
  kDivActive = 16,
  kSbFull = 17,
  kRatStall = 18,
  kMsSwitches = 19,
  kLockCycles = 20,
  kSmtContention = 21,
  // Pure noise.
  kCoreTempVar = 22,
  kPwrThrottle = 23,
  kNumPmcEvents = 24,
};

using EventVector = std::array<double, kNumPmcEvents>;

/// Event name for reports ("LLC_MPKI", ...).
const std::string& PmcEventName(std::size_t index);

/// All names in index order.
const std::vector<std::string>& PmcEventNames();

/// Aggregated behaviour of one task over one execution; the engine fills
/// this while simulating and then synthesises PMCs from it.
struct TaskAggregates {
  std::uint64_t instructions = 0;
  double program_accesses = 0;     // program-level loads+stores
  double mm_accesses = 0;          // accesses reaching main memory
  double l2_misses = 0;            // program accesses missing L2
  double prefetch_miss_weighted = 0;  // mm_accesses-weighted prefetch miss
  double overlap_weighted = 0;        // mm_accesses-weighted overlap factor
  double branch_instructions = 0;
  double vector_instructions = 0;
  double exec_seconds = 0;
  double compute_seconds = 0;
  double memory_seconds = 0;       // unhidden memory service time
  double core_ghz = 2.1;
};

/// Synthesise the full event vector. `noise` is the multiplicative
/// measurement-noise sigma (0 disables noise; the engine defaults to 2%,
/// matching run-to-run PMU variation).
EventVector SynthesizePmcs(const TaskAggregates& agg, Rng& rng,
                           double noise = 0.02);

}  // namespace merch::sim
